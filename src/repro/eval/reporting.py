"""ASCII table/series rendering for the benchmark harness.

Every bench regenerates the corresponding paper artifact (table rows or
figure series) as plain text so results diff cleanly in CI logs and in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[Sequence[float]],
    title: str = "",
    series_names: Optional[Sequence[str]] = None,
) -> str:
    """Render one or more (x, y...) series as a table — the text stand-in
    for a paper figure."""
    if not points:
        raise ValueError("series needs at least one point")
    n_series = len(points[0]) - 1
    if n_series < 1:
        raise ValueError("points must carry at least one y value")
    if series_names is None:
        series_names = (
            [y_label]
            if n_series == 1
            else [f"{y_label}[{i}]" for i in range(n_series)]
        )
    headers = [x_label, *series_names]
    return format_table(headers, points, title=title)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (``q`` in [0, 100]).

    A thin wrapper over ``numpy.percentile`` that validates the
    serving-stats contract (non-empty samples, bounded ``q``) and
    always returns a plain float.
    """
    if len(samples) == 0:
        raise ValueError("percentile needs at least one sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    return float(np.percentile(list(samples), q))


def _percentile_key(q: float) -> str:
    """``50 -> 'p50'``, ``99.9 -> 'p99.9'`` — integral percentiles drop
    the trailing ``.0`` so the default keys stay ``p50/p95/p99``."""
    return f"p{int(q)}" if float(q) == int(q) else f"p{float(q):g}"


def summarize_latencies(
    samples: Sequence[float],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> dict:
    """Serving-latency summary: count/mean/percentiles/max (seconds).

    The shared shape for :class:`repro.serve.ServerStats` snapshots and
    the serving benches' artifacts, so latency trajectories diff
    cleanly across PRs.  ``percentiles`` selects which quantiles are
    emitted (keys ``p50``, ``p95``, ``p99.9``, ...); the default
    matches the SLO gates in ``bench_serving_net`` and the ``/metrics``
    endpoint (p50/p95/p99).  Empty input reports zeros rather than
    raising: a server that has not yet served is a valid thing to
    snapshot.
    """
    keys = [_percentile_key(q) for q in percentiles]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate percentiles requested: {percentiles}")
    if len(samples) == 0:
        summary = {"count": 0, "mean": 0.0}
        summary.update({key: 0.0 for key in keys})
        summary["max"] = 0.0
        return summary
    values = [float(s) for s in samples]
    summary = {
        "count": len(values),
        "mean": sum(values) / len(values),
    }
    for key, q in zip(keys, percentiles):
        summary[key] = percentile(values, float(q))
    summary["max"] = max(values)
    return summary


def engineering(value: float, unit: str) -> str:
    """Format with engineering prefixes (1.3e-12, 'J' -> '1.3 pJ')."""
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"),
        (1e-15, "f"), (1e-18, "a"),
    ]
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.3g} {prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.3g} {prefix}{unit}"
