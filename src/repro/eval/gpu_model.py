"""Roofline cost model of the GPU baseline (NVIDIA RTX 3090).

The paper benchmarks FeReX against an RTX 3090, measuring latency with the
PyTorch profiler and energy with nvidia-smi (Sec. IV-B).  Without a GPU in
this environment we substitute a standard roofline model: a kernel's time
is the maximum of its compute time (FLOPs / peak throughput) and its
memory time (bytes moved / bandwidth), plus a fixed launch overhead; its
energy is time multiplied by the board power draw.

Distance search between a query batch and the stored matrix is strongly
*memory-bound* on a GPU (each element is used O(1) times), which is why an
in-memory architecture wins by orders of magnitude — the structural fact
behind the paper's Fig. 8(b)/(c).

Model constants are calibrated against the 3090's public specifications
and the usual achieved-fraction rules of thumb; they can be swept to
represent other baselines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet-level description of the baseline GPU."""

    name: str = "NVIDIA RTX 3090"
    #: Peak FP32 throughput, FLOP/s.
    peak_flops: float = 35.6e12
    #: Peak memory bandwidth, bytes/s (936 GB/s GDDR6X).
    memory_bandwidth: float = 936.0e9
    #: Board power under sustained load, watts (350 W TDP).
    board_power: float = 350.0
    #: Fraction of peak compute a real kernel achieves.
    compute_efficiency: float = 0.6
    #: Fraction of peak bandwidth a real kernel achieves.
    bandwidth_efficiency: float = 0.75
    #: Fixed per-kernel launch + framework overhead, seconds
    #: (PyTorch dispatch is tens of microseconds).
    kernel_overhead: float = 20.0e-6
    #: Fraction of board power drawn while a kernel runs (boards do not
    #: sit at TDP for memory-bound kernels).
    power_utilisation: float = 0.7


@dataclass(frozen=True)
class GPUEstimate:
    """Time/energy estimate of one workload."""

    #: Total wall time, seconds.
    time: float
    #: Total energy, joules.
    energy: float
    #: Compute-phase time had the kernel been compute-bound, seconds.
    compute_time: float
    #: Memory-phase time had the kernel been memory-bound, seconds.
    memory_time: float
    #: Number of kernel launches assumed.
    kernels: int

    @property
    def bound(self) -> str:
        """Which roofline wall limits the kernel."""
        return "memory" if self.memory_time >= self.compute_time else "compute"


class GPUCostModel:
    """Roofline estimator for associative-search workloads."""

    #: Bytes per element for FP32 tensors.
    DTYPE_BYTES = 4

    def __init__(self, spec: GPUSpec = GPUSpec()):
        self.spec = spec

    def distance_search(
        self,
        n_queries: int,
        n_stored: int,
        dims: int,
        flops_per_element: float = 3.0,
        batch_size: int = 256,
    ) -> GPUEstimate:
        """Cost of computing an (n_queries x n_stored) distance table and
        reducing it to per-query argmins.

        ``flops_per_element`` is the per (query, stored, dim) work:
        subtract + square/abs + accumulate = 3 for L1/L2, 2 for XOR+popc
        Hamming.  Batches of ``batch_size`` queries each launch one kernel
        (the PyTorch dispatch pattern the paper profiles).
        """
        if n_queries < 1 or n_stored < 1 or dims < 1:
            raise ValueError("workload dimensions must be positive")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        spec = self.spec

        flops = flops_per_element * n_queries * n_stored * dims
        # Memory traffic: queries once, stored matrix re-read per batch
        # (it does not fit in L2 alongside activations for real sizes),
        # distance table written once.
        n_batches = -(-n_queries // batch_size)
        bytes_moved = self.DTYPE_BYTES * (
            n_queries * dims
            + n_batches * n_stored * dims
            + n_queries * n_stored
        )

        compute_time = flops / (spec.peak_flops * spec.compute_efficiency)
        memory_time = bytes_moved / (
            spec.memory_bandwidth * spec.bandwidth_efficiency
        )
        time = max(compute_time, memory_time) + n_batches * spec.kernel_overhead
        energy = time * spec.board_power * spec.power_utilisation
        return GPUEstimate(
            time=time,
            energy=energy,
            compute_time=compute_time,
            memory_time=memory_time,
            kernels=n_batches,
        )

    def hdc_inference(
        self,
        n_queries: int,
        n_classes: int,
        dim: int,
        n_features: int,
        batch_size: int = 256,
    ) -> GPUEstimate:
        """Full HDC inference: encoding projection + distance search.

        The encoding matmul (features -> hypervector) runs on the GPU in
        both systems; FeReX accelerates the *search* stage.  The paper's
        speedups are quoted for the in-memory search operation, so
        :meth:`distance_search` is what Fig. 8 uses; this helper exists
        for end-to-end comparisons.
        """
        encode = self.distance_search(
            n_queries,
            dim,
            n_features,
            flops_per_element=2.0,
            batch_size=batch_size,
        )
        search = self.distance_search(
            n_queries, n_classes, dim, batch_size=batch_size
        )
        return GPUEstimate(
            time=encode.time + search.time,
            energy=encode.energy + search.energy,
            compute_time=encode.compute_time + search.compute_time,
            memory_time=encode.memory_time + search.memory_time,
            kernels=encode.kernels + search.kernels,
        )
