"""Monte Carlo robustness studies (paper Fig. 7).

The paper validates FeReX's robustness with 100-run Monte Carlo
simulations injecting device-to-device variation (sigma_Vth = 54 mV,
sigma_R = 8 %) and reports >= 90 % search accuracy for the most
challenging KNN case — deciding between stored vectors at Hamming
distances 5 and 6 from the query — with only 0.6 % end-to-end accuracy
degradation versus software.

This module provides the seeded harness:

* :func:`build_distance_probe` constructs a stored set with one vector at
  distance ``d_near`` and several at ``d_far`` from a query — the paper's
  worst-case probe;
* :class:`MonteCarloSearch` runs the probe across many sampled array
  instances and reports the search accuracy (fraction of runs whose LTA
  winner is the true nearest row);
* :class:`MonteCarloKNNAccuracy` compares end-to-end KNN classification
  accuracy between the software baseline and varied hardware; all
  neighbor search runs through the shared :class:`repro.index.FerexIndex`
  layer (no experiment-private bank plumbing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..apps.knn import KNNClassifier
from ..core.engine import FeReX
from ..devices.tech import TechConfig


@dataclass
class MCSearchResult:
    """Aggregate of one Monte Carlo search experiment."""

    d_near: int
    d_far: int
    n_runs: int
    successes: int
    #: Winner margin (units) per run, for distribution plots.
    margins: List[float] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return self.successes / self.n_runs if self.n_runs else 0.0


def build_distance_probe(
    dims: int,
    bits: int,
    d_near: int,
    d_far: int,
    n_far: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """A (query, stored set) pair with exact Hamming distances.

    Row 0 of the stored set is at Hamming distance ``d_near`` from the
    query; rows 1..n_far are at ``d_far``.  Distances are created by
    flipping single bits of distinct elements, so they are exact for the
    Hamming metric on ``bits``-bit elements.
    """
    total_bits = dims * bits
    if d_near > total_bits or d_far > total_bits:
        raise ValueError("distance exceeds total bit count")
    query = rng.integers(0, 1 << bits, size=dims)

    def flip_bits(base: np.ndarray, n_flips: int) -> np.ndarray:
        out = base.copy()
        positions = rng.choice(total_bits, size=n_flips, replace=False)
        for pos in positions:
            dim, bit = divmod(int(pos), bits)
            out[dim] ^= 1 << bit
        return out

    stored = [flip_bits(query, d_near)]
    for _ in range(n_far):
        stored.append(flip_bits(query, d_far))
    return query, np.array(stored, dtype=int)


class MonteCarloSearch:
    """Fig. 7 harness: worst-case search accuracy under variation.

    Each run samples a fresh array instance (new D2D threshold offsets,
    resistor spread and LTA offsets via ``seed0 + run``) plus a fresh
    probe, then asks whether the LTA still finds the nearest row.
    """

    def __init__(
        self,
        dims: int = 64,
        bits: int = 2,
        n_far: int = 15,
        n_runs: int = 100,
        seed0: int = 1000,
        tech: Optional[TechConfig] = None,
        encoder: str = "auto",
    ):
        if n_runs < 1:
            raise ValueError("need at least one run")
        self.dims = dims
        self.bits = bits
        self.n_far = n_far
        self.n_runs = n_runs
        self.seed0 = seed0
        self.tech = tech
        self.encoder = encoder

    def run_pair(self, d_near: int, d_far: int) -> MCSearchResult:
        """Monte Carlo over one (d_near, d_far) probe pair."""
        if d_far <= d_near:
            raise ValueError("d_far must exceed d_near")
        result = MCSearchResult(
            d_near=d_near, d_far=d_far, n_runs=self.n_runs, successes=0
        )
        for run in range(self.n_runs):
            seed = self.seed0 + run
            rng = np.random.default_rng(seed)
            query, stored = build_distance_probe(
                self.dims, self.bits, d_near, d_far, self.n_far, rng
            )
            engine = FeReX(
                metric="hamming",
                bits=self.bits,
                dims=self.dims,
                encoder=self.encoder,
                tech=self.tech,
                seed=seed,
            )
            engine.program(stored)
            search = engine.search(query)
            if search.winner == 0:
                result.successes += 1
            result.margins.append(float(search.array_result.decision.margin))
        return result

    def sweep(
        self, pairs: List[Tuple[int, int]]
    ) -> List[MCSearchResult]:
        """Run several (d_near, d_far) pairs — the Fig. 7 x-axis."""
        return [self.run_pair(dn, df) for dn, df in pairs]


@dataclass
class MCAccuracyResult:
    """Software-vs-hardware classification accuracy comparison."""

    software_accuracy: float
    hardware_accuracy: float
    #: Fraction of test queries where hardware and software predict the
    #: same label.  More robust than the accuracy delta at small test
    #: sizes, where integer-distance ties dominate.
    prediction_agreement: float = 1.0

    @property
    def degradation(self) -> float:
        """Accuracy lost to device variation (paper: 0.6 %)."""
        return self.software_accuracy - self.hardware_accuracy


class MonteCarloKNNAccuracy:
    """End-to-end KNN accuracy degradation under variation."""

    def __init__(
        self,
        metric: str = "hamming",
        bits: int = 2,
        k: int = 1,
        seed: int = 42,
        encoder: str = "auto",
    ):
        self.metric = metric
        self.bits = bits
        self.k = k
        self.seed = seed
        self.encoder = encoder

    def compare(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
    ) -> MCAccuracyResult:
        """Fit both backends on identical data and report the accuracy
        delta caused by hardware variation.

        Both classifiers delegate neighbor search to a
        :class:`repro.index.FerexIndex` (exact backend for software,
        sharded array banks for hardware), so the whole test set flows
        through one batched index search per backend — which is what
        makes paper-sized Monte Carlo sweeps tractable.
        """
        software = KNNClassifier(
            metric=self.metric, bits=self.bits, k=self.k,
            backend="software",
        ).fit(train_x, train_y)
        hardware = KNNClassifier(
            metric=self.metric, bits=self.bits, k=self.k,
            backend="ferex", seed=self.seed, encoder=self.encoder,
        ).fit(train_x, train_y)
        test_y = np.asarray(test_y, dtype=int)
        sw_pred = software.predict(test_x)
        hw_pred = hardware.predict(test_x)
        return MCAccuracyResult(
            software_accuracy=float(np.mean(sw_pred == test_y)),
            hardware_accuracy=float(np.mean(hw_pred == test_y)),
            prediction_agreement=float(np.mean(sw_pred == hw_pred)),
        )
