"""DESTINY-style wire parasitic extraction for the FeReX crossbar.

The paper extracts 45 nm wiring parasitics with DESTINY [Poremba, DATE
2015].  DESTINY's first-order model is: wire resistance and capacitance
scale linearly with routed length, plus a per-connected-cell junction load.
Lengths follow from the array geometry — each 1FeFET1R cell occupies a
``cell_pitch_f`` x ``cell_pitch_f`` footprint (the BEOL resistor stacks on
top of the transistor, so the resistor adds no area [Saito, VLSI 2021]).

Line orientation in FeReX (paper Fig. 2(a)):

* search lines (SL) and drain lines (DL) run **vertically** — shared by the
  FeFETs of one column, so their length grows with the number of rows;
* source lines (ScL) and row lines (RL) run **horizontally** — shared
  within a row, so their length grows with the number of columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..devices.tech import CellParams, WireParams, FEATURE_SIZE_45NM


@dataclass(frozen=True)
class LineParasitics:
    """Lumped RC of one array line."""

    #: Total line resistance, ohms.
    resistance: float
    #: Total line capacitance (wire + cell loading), farads.
    capacitance: float
    #: Elmore delay of the distributed line, seconds.
    @property
    def elmore_delay(self) -> float:
        return 0.5 * self.resistance * self.capacitance


@dataclass(frozen=True)
class ArrayParasitics:
    """Parasitics of every line class in one crossbar instance."""

    scl: LineParasitics
    rl: LineParasitics
    sl: LineParasitics
    dl: LineParasitics
    #: Physical array width (column direction), meters.
    width: float
    #: Physical array height (row direction), meters.
    height: float

    @property
    def area(self) -> float:
        """Array core area, square meters."""
        return self.width * self.height


def extract(
    rows: int,
    cols: int,
    wire: Optional[WireParams] = None,
    cell: Optional[CellParams] = None,
    feature_size: float = FEATURE_SIZE_45NM,
) -> ArrayParasitics:
    """Extract lumped line parasitics for a ``rows x cols`` crossbar.

    ``cols`` counts physical FeFET columns (cells x FeFETs-per-cell after
    the encoding maps each data element onto K devices).
    """
    if rows < 1 or cols < 1:
        raise ValueError("array must have at least one row and one column")
    wire = wire or WireParams()
    cell = cell or CellParams()

    pitch = cell.cell_pitch_f * feature_size
    width = cols * pitch
    height = rows * pitch

    def line(length: float, n_cells: int) -> LineParasitics:
        return LineParasitics(
            resistance=length * wire.res_per_meter,
            capacitance=length * wire.cap_per_meter
            + n_cells * wire.cap_per_cell,
        )

    horizontal = line(width, cols)
    vertical = line(height, rows)
    return ArrayParasitics(
        scl=horizontal,
        rl=horizontal,
        sl=vertical,
        dl=vertical,
        width=width,
        height=height,
    )
