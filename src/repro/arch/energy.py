"""NeuroSim-style search-energy model of the FeReX array.

Energy per search decomposes into (paper Sec. IV-A, Fig. 6(a)):

* **array conduction** — every activated FeFET conducts ``Vds / R`` for the
  whole search window; joule heating is ``sum(I * Vds) * t_search``;
* **line charging** — the DL/SL swings charge the vertical wire
  capacitance each query;
* **op-amp clamping** — one amp per row burns static power for the search
  window plus the settling charge;
* **LTA** — bias current on every competing branch during the decision,
  largely amortised as rows grow ("the power consumption of LTA grows
  insignificantly as the number of rows increases");
* **peripherals** — DAC/decoder/driver event energies.

The headline metric of Fig. 6(a) is **energy per bit**: total search energy
divided by the number of stored bits examined by the query
(``rows x dims x bits_per_dim``).  Amortisation of the row-independent
terms over more rows is what makes the per-bit curve fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..circuits.lta import LoserTakeAll
from ..circuits.opamp import ClampOpAmp
from ..devices.tech import TechConfig, DEFAULT_TECH
from .parasitics import ArrayParasitics, extract
from .timing import SearchTiming, TimingModel


@dataclass
class EnergyBreakdown:
    """Per-component energy of one operation, joules."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return float(sum(self.components.values()))

    def add(self, name: str, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative energy for {name}")
        self.components[name] = self.components.get(name, 0.0) + value

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            {k: v * factor for k, v in self.components.items()}
        )


class EnergyModel:
    """Search/write energy estimator for a ``rows x physical_cols`` array."""

    def __init__(
        self,
        rows: int,
        physical_cols: int,
        tech: Optional[TechConfig] = None,
        parasitics: Optional[ArrayParasitics] = None,
    ):
        self.rows = rows
        self.physical_cols = physical_cols
        self.tech = tech or DEFAULT_TECH
        self.parasitics = parasitics or extract(
            rows,
            physical_cols,
            wire=self.tech.wire,
            cell=self.tech.cell,
            feature_size=self.tech.feature_size,
        )
        self.timing = TimingModel(
            rows, physical_cols, self.tech, self.parasitics
        )

    # ------------------------------------------------------------------
    def search_energy(
        self,
        row_currents: np.ndarray,
        dl_multiples: np.ndarray,
        timing: Optional[SearchTiming] = None,
    ) -> EnergyBreakdown:
        """Energy of one search with the given electrical activity.

        Parameters
        ----------
        row_currents:
            (rows,) aggregated ScL currents, amps.
        dl_multiples:
            (physical_cols,) integer Vds levels applied this query.
        timing:
            Latency breakdown; computed at the nominal margin when omitted.
        """
        tech = self.tech
        cell = tech.cell
        timing = timing or self.timing.search_timing()
        # The array and its clamp op-amps only need to be biased until the
        # LTA input stage has sampled stable row currents — the sensing
        # window; the regenerative LTA decision runs off its own rail.
        sensing_window = timing.drive + timing.scl_settling

        breakdown = EnergyBreakdown()

        vds = np.asarray(dl_multiples, dtype=float) * cell.vds_unit
        # Array conduction: the ScL current of each row flowed from drain
        # rails at (on average) the driven Vds levels.
        total_current = float(np.sum(row_currents))
        mean_vds = float(np.mean(vds)) if len(vds) else 0.0
        breakdown.add(
            "array_conduction", total_current * mean_vds * sensing_window
        )

        # Line charging: vertical lines swing to their target levels.
        cap_line = self.parasitics.dl.capacitance
        charge = float(np.sum(cap_line * vds * vds))
        breakdown.add("line_charging", charge)

        # Op-amp clamping: one per row, biased through the sensing window.
        opamp = ClampOpAmp(tech.opamp)
        step = cell.max_vds_multiple * cell.vds_unit
        settle = opamp.settling(self.parasitics.scl.capacitance, step)
        hold = max(0.0, sensing_window - settle.total_time)
        breakdown.add(
            "opamp",
            self.rows * (settle.energy + opamp.hold_energy(hold)),
        )

        # LTA decision.
        lta = LoserTakeAll(self.rows, tech.lta)
        breakdown.add("lta", lta.decision_energy(timing.lta))

        # Peripheral events.
        driver = tech.driver
        active_sls = int(np.count_nonzero(dl_multiples))
        breakdown.add("sl_drivers", active_sls * driver.sl_driver_energy)
        breakdown.add(
            "dl_selector",
            float(np.sum(np.asarray(dl_multiples))) * driver.dac_energy_per_line,
        )
        return breakdown

    def energy_per_bit(
        self,
        breakdown: EnergyBreakdown,
        dims: int,
        bits_per_dim: int,
    ) -> float:
        """Fig. 6(a) metric: search energy per examined stored bit."""
        bits = self.rows * dims * bits_per_dim
        if bits <= 0:
            raise ValueError("no bits examined")
        return breakdown.total / bits

    # ------------------------------------------------------------------
    def write_energy(self, n_cells: int) -> EnergyBreakdown:
        """Energy of programming ``n_cells`` cells (one pulse each) with the
        V/2 inhibition scheme charging every unselected row line."""
        tech = self.tech
        breakdown = EnergyBreakdown()
        breakdown.add(
            "write_drivers", n_cells * tech.driver.write_driver_energy
        )
        half_v = 0.5 * tech.driver.write_voltage
        inhibit = (
            (self.rows - 1)
            * self.parasitics.rl.capacitance
            * half_v
            * half_v
        )
        breakdown.add("inhibition", max(0.0, inhibit))
        breakdown.add(
            "decoder",
            tech.driver.decoder_energy_per_bit
            * max(1, int(np.ceil(np.log2(max(self.rows, 2))))),
        )
        return breakdown
