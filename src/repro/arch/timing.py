"""Search-delay model of the FeReX array.

The paper decomposes search delay into two parts (Sec. IV-A):

    "About 60% of the total delay comes from ScL voltage stabilization
    associated with the op-amp, which is constrained by the op-amp's slew
    rate. The remaining delay associates with the LTA circuitry."

and Fig. 6(b) shows total delay growing gradually with the number of rows
and dimensions.  This module reproduces both statements structurally:

* **drive phase** — decoder + DAC assertion, a small constant;
* **ScL settling** — the clamp op-amp fights the current step injected by
  the activated FeFETs into the ScL; its load is the full horizontal wire
  plus every cell junction (grows with dimensions), so this term scales
  with columns and dominates;
* **LTA decision** — grows logarithmically with rows via the shared-rail
  term and inversely with the winner margin.

The ScL disturbance amplitude is the unit Vds step: when the search vector
changes, a drain line moves by at most ``max_vds_multiple * vds_unit`` and
couples onto the ScL; we use the worst-case full-swing step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circuits.lta import LoserTakeAll
from ..circuits.opamp import ClampOpAmp
from ..devices.tech import TechConfig, DEFAULT_TECH
from .parasitics import ArrayParasitics, extract


@dataclass(frozen=True)
class SearchTiming:
    """Breakdown of one search operation's latency."""

    #: Peripheral decode + drive time, seconds.
    drive: float
    #: ScL stabilisation (op-amp limited), seconds.
    scl_settling: float
    #: LTA decision time, seconds.
    lta: float

    @property
    def total(self) -> float:
        return self.drive + self.scl_settling + self.lta

    @property
    def scl_fraction(self) -> float:
        """Fraction of the total delay due to ScL settling (the paper's
        '~60%' figure at the nominal design point)."""
        return self.scl_settling / self.total if self.total > 0 else 0.0


class TimingModel:
    """Computes search latency for a given array geometry."""

    def __init__(
        self,
        rows: int,
        physical_cols: int,
        tech: Optional[TechConfig] = None,
        parasitics: Optional[ArrayParasitics] = None,
    ):
        self.rows = rows
        self.physical_cols = physical_cols
        self.tech = tech or DEFAULT_TECH
        self.parasitics = parasitics or extract(
            rows,
            physical_cols,
            wire=self.tech.wire,
            cell=self.tech.cell,
            feature_size=self.tech.feature_size,
        )
        self._opamp = ClampOpAmp(self.tech.opamp)

    def scl_load(self) -> float:
        """Capacitive load one row op-amp drives, farads."""
        return self.parasitics.scl.capacitance

    def search_timing(self, winner_margin: Optional[float] = None) -> SearchTiming:
        """Latency breakdown for one search.

        ``winner_margin`` is the winner/runner-up current gap (amps); when
        omitted the nominal one-unit-current margin is assumed.
        """
        cell = self.tech.cell
        if winner_margin is None:
            winner_margin = cell.unit_current

        drive = self.tech.driver.drive_delay

        step = cell.max_vds_multiple * cell.vds_unit
        settle = self._opamp.settling(self.scl_load(), step).total_time

        lta = LoserTakeAll(self.rows, self.tech.lta)
        lta_delay = lta.decision_delay(winner_margin)
        return SearchTiming(drive=drive, scl_settling=settle, lta=lta_delay)
