"""Behavioural simulator of the 1FeFET1R crossbar array.

This is the Python stand-in for the paper's Cadence array netlist.  It
keeps per-device state (threshold voltage, series resistance — both with
sampled process variation), applies the paper's biasing schemes, and
evaluates search currents vectorised over the whole array:

* **write/erase** (paper Sec. III-A): one row selected (RL = 0 V), all
  others inhibited at ``Vwrite / 2`` so their gate stacks never see a
  switching field.  The simulator tracks disturb exposure of inhibited
  cells and drifts their threshold if the inhibited stack voltage
  approaches the coercive voltage — with the paper's scheme it never does,
  which a regression test asserts.
* **search**: search voltages on the SL gates, integer-multiple ``Vds`` on
  the DLs, every ScL clamped at the op-amp reference.  A FeFET conducts
  ``Vds / R`` when ON (clamp regime) and its subthreshold leakage when
  OFF.  Row currents aggregate along the ScL and feed the LTA.

The electrical model matches :mod:`repro.devices.cell` (the fast path)
but evaluates in numpy across the array, which is what makes Monte Carlo
over 100 array instances x thousands of queries tractable.

Batch pipeline
--------------
Three search entry points share one evaluation/decision stack so their
results are bit-identical by construction:

* :meth:`FeReXArray.search` — one query; currents through the blocked
  3-D kernel (:meth:`FeReXArray.cell_currents_block` on a one-query
  block), winner through :meth:`LoserTakeAll.decide` (which delegates
  to the vectorised ``decide_batch``).
* :meth:`FeReXArray.search_batch` / :meth:`FeReXArray.search_k_batch` —
  arbitrary bias matrices, evaluated in ``(chunk, rows, cols)`` blocks.
* :meth:`FeReXArray.search_batch_values` /
  :meth:`FeReXArray.search_k_batch_values` — the associative-memory
  fast path: per-cell currents for the small bias alphabet are
  precomputed once (cached until the next write) and each query block
  is assembled by value-select, an order of magnitude faster again.

Quantized integer kernel
------------------------
On ideal (unvaried, undrifted) arrays every search path above routes
through one more level of compilation: the programmed state collapses
to a small-integer *code* per cell and the bias alphabet to an integer
(value, code) score LUT (:class:`repro.core.kernel.QuantizedKernel`,
compiled once per write generation by
:meth:`FeReXArray.quantized_kernel`), so the hot loop is a gather +
exact blocked reduction instead of re-evaluated float device physics.
Generic bias matrices are matched back onto the registered alphabet
(:meth:`FeReXArray.set_search_alphabet`) so serial, batch and
values-path searches all hit the same kernel and stay bit-identical.
Varied / drifted arrays — the Monte Carlo setting — and foreign bias
matrices keep the float physics path unchanged; ``kernel_enabled``
switches the kernel off entirely (the benchmark baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..circuits.lta import LoserTakeAll, LTADecision
from ..devices.cell import compile_current_lut, fast_cell_currents
from ..devices.tech import TechConfig, DEFAULT_TECH
from ..devices.variation import ArrayVariation, nominal_variation
from .energy import EnergyBreakdown, EnergyModel
from .parasitics import ArrayParasitics, extract
from .timing import SearchTiming, TimingModel


@dataclass
class SearchResult:
    """Everything one array search produces."""

    #: (rows,) aggregated ScL currents, amps.
    row_currents: np.ndarray
    #: (rows,) currents expressed in nominal unit currents (distance reading).
    row_units: np.ndarray
    #: LTA decision (winner row index + electrical metadata).
    decision: LTADecision
    #: Latency breakdown.
    timing: SearchTiming
    #: Energy breakdown.
    energy: EnergyBreakdown

    @property
    def winner(self) -> int:
        return self.decision.winner

    def ranked_rows(self) -> np.ndarray:
        """Row indices sorted by measured current (closest first)."""
        return np.argsort(self.row_currents, kind="stable")


@dataclass
class BatchSearchResult:
    """Vectorised outcome of a query batch."""

    #: (n_queries,) LTA winner per query.
    winners: np.ndarray
    #: (n_queries, rows) distance readings in unit currents.
    row_units: np.ndarray
    #: Latency of each search (identical across the batch).
    timing_per_query: SearchTiming
    #: Energy of each search (nominal-activity estimate).
    energy_per_query: EnergyBreakdown

    @property
    def n_queries(self) -> int:
        return len(self.winners)

    @property
    def total_time(self) -> float:
        """Wall time of the serialised batch, seconds."""
        return self.n_queries * self.timing_per_query.total

    @property
    def total_energy(self) -> float:
        """Energy of the serialised batch, joules."""
        return self.n_queries * self.energy_per_query.total


@dataclass
class BatchSearchKResult:
    """Vectorised outcome of an iterative top-k search over a batch.

    Per query, ``winners`` holds the ``k`` LTA winners in decision order
    (nearest first), matching the list :meth:`FeReXArray.search_k`
    returns for the same query.
    """

    #: (n_queries, k) LTA winners per query, nearest first.
    winners: np.ndarray
    #: (n_queries, rows) distance readings in unit currents.
    row_units: np.ndarray
    #: Latency of each underlying search (identical across the batch).
    timing_per_query: SearchTiming
    #: Energy of each underlying search (nominal-activity estimate).
    energy_per_query: EnergyBreakdown

    @property
    def n_queries(self) -> int:
        return len(self.winners)

    @property
    def k(self) -> int:
        return self.winners.shape[1]


class FeReXArray:
    """A rows x physical_cols 1FeFET1R crossbar with LTA read-out.

    ``physical_cols`` counts FeFET columns; the data-to-device fan-out
    (K FeFETs per encoded element) is handled by the mapping layer in
    :mod:`repro.core.engine`, which drives this class with per-column
    voltages.
    """

    #: Threshold drift per disturb event, volts per volt of overdrive
    #: beyond the safe stack voltage.
    DISTURB_DRIFT_PER_VOLT = 0.01
    #: Multiple of the coercive voltage a half-selected stack tolerates
    #: for one write-pulse duration without measurable switching.
    #: Ferroelectric switching is strongly field-time nonlinear
    #: (nucleation-limited switching): a full-select pulse at ~4x Vc
    #: switches in a microsecond, while a half-select stack at ~1.7x Vc
    #: needs orders of magnitude longer than the pulse [Ni, EDL 2018].
    #: The V/2 inhibition scheme is designed exactly around this margin.
    DISTURB_SAFE_FRACTION = 2.0

    def __init__(
        self,
        rows: int,
        physical_cols: int,
        tech: Optional[TechConfig] = None,
        variation: Optional[ArrayVariation] = None,
        cell_fanout: int = 1,
    ):
        if rows < 1 or physical_cols < 1:
            raise ValueError("array needs at least one row and one column")
        if cell_fanout < 1 or physical_cols % cell_fanout:
            raise ValueError(
                f"cell_fanout {cell_fanout} must divide "
                f"physical_cols {physical_cols}"
            )
        self.rows = rows
        self.physical_cols = physical_cols
        #: FeFET columns per encoded element (the mapping layer's K).
        #: Row currents aggregate per-cell partial sums first, which the
        #: bias-alphabet fast path exploits with a per-cell table.
        self.cell_fanout = cell_fanout
        #: Encoded elements per row.
        self.cells = physical_cols // cell_fanout
        self.tech = tech or DEFAULT_TECH
        if variation is None:
            variation = nominal_variation(rows, physical_cols)
        if variation.shape != (rows, physical_cols):
            raise ValueError(
                f"variation shape {variation.shape} != "
                f"({rows}, {physical_cols})"
            )
        self.variation = variation

        fefet = self.tech.fefet
        erased = fefet.vth_low + fefet.memory_window
        #: Programmed nominal threshold per cell (erased initially).
        self._vth_nominal = np.full((rows, physical_cols), erased)
        #: Disturb-induced drift accumulated per cell, volts.
        self._disturb_drift = np.zeros((rows, physical_cols))
        #: Series resistance per cell, ohms (static variation applied).
        self._resistance = (
            self.tech.cell.resistance * variation.r_factor
        )
        #: Stored MLC level per cell, -1 = erased.
        self.levels = np.full((rows, physical_cols), -1, dtype=int)

        self.parasitics: ArrayParasitics = extract(
            rows,
            physical_cols,
            wire=self.tech.wire,
            cell=self.tech.cell,
            feature_size=self.tech.feature_size,
        )
        self.energy_model = EnergyModel(
            rows, physical_cols, self.tech, self.parasitics
        )
        self.timing_model = TimingModel(
            rows, physical_cols, self.tech, self.parasitics
        )
        self._lta = LoserTakeAll(
            rows, self.tech.lta, offsets=variation.lta_offset
        )
        #: Cumulative write energy, joules.
        self.write_energy_total = 0.0
        #: Count of disturb-unsafe exposures observed (should stay 0).
        self.disturb_violations = 0
        #: Bumped on every write so cached search tables invalidate.
        self.write_generation = 0
        self._bias_table_cache: Optional[tuple] = None
        #: Master switch for the quantized integer kernel; ``False``
        #: forces the float-physics path everywhere (the benchmark
        #: baseline and an escape hatch).
        self.kernel_enabled = True
        #: Registered bias alphabet generic searches are matched onto.
        self._alphabet: Optional[tuple] = None
        self._kernel_cache: Optional[tuple] = None
        self._ideal_variation: Optional[bool] = None

    # ------------------------------------------------------------------
    # Observable device state
    # ------------------------------------------------------------------
    @property
    def vth(self) -> np.ndarray:
        """Actual per-cell thresholds: nominal + D2D offset + drift."""
        return (
            self._vth_nominal
            + self.variation.vth_offset
            + self._disturb_drift
        )

    @property
    def resistance(self) -> np.ndarray:
        """Actual per-cell series resistance, ohms."""
        return self._resistance

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def erase_row(self, row: int) -> None:
        """Block-erase one row to the highest threshold state."""
        self._check_row(row)
        self.write_generation += 1
        fefet = self.tech.fefet
        self._vth_nominal[row, :] = fefet.vth_low + fefet.memory_window
        self.levels[row, :] = -1
        self._account_write(self.physical_cols)
        self._apply_disturb(row)

    def program_row(self, row: int, levels: Sequence[int]) -> None:
        """Erase-then-program a full row of MLC levels.

        ``levels`` must contain valid level indices
        (``0 .. n_vth_levels-1``); the whole row is written in one
        erase + one program pulse per level group, with every other row
        inhibited.
        """
        self._check_row(row)
        levels = np.asarray(levels, dtype=int)
        if levels.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} levels, got {levels.shape}"
            )
        fefet = self.tech.fefet
        if levels.min() < 0 or levels.max() >= fefet.n_vth_levels:
            raise ValueError("level outside the device MLC range")

        self.erase_row(row)
        self.write_generation += 1
        nominal = np.array([fefet.vth_level(lv) for lv in levels])
        self._vth_nominal[row, :] = nominal
        self.levels[row, :] = levels
        self._account_write(self.physical_cols)
        self._apply_disturb(row)

    def program_matrix(self, levels: np.ndarray) -> None:
        """Program every row of the array from a (rows, cols) level matrix.

        Fast path equivalent to looping :meth:`program_row` over every
        row, but O(rows): delegates to :meth:`program_rows` on the full
        row span, so thresholds are written through one vectorised
        level-to-Vth lookup and the erase/program energy plus half-select
        disturb exposure are accounted in a single closed-form pass
        instead of the per-written-row loop (which re-touches every
        *other* row per write, O(rows^2) work in total).  Unlike the
        loop, validation happens up front, so an invalid level matrix
        leaves the array untouched.
        """
        levels = np.asarray(levels, dtype=int)
        if levels.shape != (self.rows, self.physical_cols):
            raise ValueError(
                f"expected shape ({self.rows}, {self.physical_cols}), "
                f"got {levels.shape}"
            )
        self.program_rows(0, levels)

    def program_rows(self, start: int, levels: np.ndarray) -> None:
        """Erase-then-program a contiguous slice of rows, vectorised.

        The row-level incremental write path: rows ``start ..
        start + n - 1`` are written from an (n, physical_cols) level
        matrix while every other row is inhibited, leaving previously
        programmed rows untouched.  This is how a deployed bank admits
        new vectors without a full re-program (see
        :class:`repro.index.FerexIndex`).  Energy and half-select
        disturb exposure are accounted in closed form, identical to the
        per-row loop summed analytically; validation happens up front so
        an invalid write leaves the array untouched.
        """
        levels = np.asarray(levels, dtype=int)
        if levels.ndim != 2 or levels.shape[1] != self.physical_cols:
            raise ValueError(
                f"expected (n, {self.physical_cols}) levels, got "
                f"{levels.shape}"
            )
        n = levels.shape[0]
        if n < 1:
            raise ValueError("need at least one row to program")
        if not 0 <= start or start + n > self.rows:
            raise ValueError(
                f"row span [{start}, {start + n}) outside [0, {self.rows})"
            )
        fefet = self.tech.fefet
        if levels.min() < 0 or levels.max() >= fefet.n_vth_levels:
            raise ValueError("level outside the device MLC range")

        self.write_generation += 1
        vth_lut = np.array(
            [fefet.vth_level(lv) for lv in range(fefet.n_vth_levels)]
        )
        self._vth_nominal[start : start + n] = vth_lut[levels]
        self.levels[start : start + n] = levels
        # Each written row costs one erase pulse + one program pulse over
        # all of its cells, exactly as in program_row.
        self._account_write(self.physical_cols, n_pulses=2 * n)
        self._apply_disturb_rows(start, n, pulses_per_row=2)

    def _apply_disturb_rows(
        self, start: int, n: int, pulses_per_row: int
    ) -> None:
        """Closed-form disturb accounting for an n-row slice write.

        Each pulse on a written row half-selects every *other* row, so a
        row outside the slice sees ``pulses_per_row * n`` events while a
        row inside it sees ``pulses_per_row * (n - 1)`` (it is fully
        selected, not inhibited, during its own write) — the same
        exposure the per-row :meth:`_apply_disturb` loop accumulates,
        summed analytically.
        """
        fefet = self.tech.fefet
        half = 0.5 * self.tech.driver.write_voltage
        safe = self.DISTURB_SAFE_FRACTION * fefet.coercive_voltage
        overdrive = half - safe
        if overdrive <= 0:
            return
        events = np.full(self.rows, pulses_per_row * n, dtype=float)
        events[start : start + n] = pulses_per_row * (n - 1)
        self._disturb_drift -= (
            self.DISTURB_DRIFT_PER_VOLT * overdrive * events[:, None]
        )
        self.disturb_violations += (
            pulses_per_row * n * (self.rows - 1) * self.physical_cols
        )

    def _account_write(self, n_cells: int, n_pulses: int = 1) -> None:
        self.write_energy_total += (
            n_pulses * self.energy_model.write_energy(n_cells).total
        )

    def _apply_disturb(self, written_row: int) -> None:
        """Model half-select stress on every *other* row.

        The inhibited stack voltage is ``Vwrite - Vwrite/2 = Vwrite/2``.
        If that exceeds the safe fraction of the coercive voltage the
        threshold of inhibited cells drifts down slightly and the event is
        counted; with the paper's inhibition scheme it never triggers.
        """
        fefet = self.tech.fefet
        half = 0.5 * self.tech.driver.write_voltage
        safe = self.DISTURB_SAFE_FRACTION * fefet.coercive_voltage
        overdrive = half - safe
        if overdrive <= 0:
            return
        mask = np.ones(self.rows, dtype=bool)
        mask[written_row] = False
        self._disturb_drift[mask, :] -= (
            self.DISTURB_DRIFT_PER_VOLT * overdrive
        )
        self.disturb_violations += int(mask.sum()) * self.physical_cols

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} outside [0, {self.rows})")

    # ------------------------------------------------------------------
    # Search path
    # ------------------------------------------------------------------
    def cell_currents(
        self,
        sl_voltages: Sequence[float],
        dl_multiples: Sequence[int],
    ) -> np.ndarray:
        """(rows, cols) per-cell currents under the given search bias.

        Vectorised fast-path model: ON cells are clamped to ``Vds / R``
        (the series resistor dominates); OFF cells leak the subthreshold
        current capped by the clamp.  One-query view of
        :meth:`cell_currents_block`, which is the shared evaluation
        kernel of :meth:`search` and :meth:`search_batch`.
        """
        sl = np.asarray(sl_voltages, dtype=float)
        dl = np.asarray(dl_multiples, dtype=int)
        if sl.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} SL voltages, got {sl.shape}"
            )
        if dl.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} DL levels, got {dl.shape}"
            )
        return self.cell_currents_block(sl[None, :], dl[None, :])[0]

    def cell_currents_block(
        self,
        sl_block: np.ndarray,
        dl_block: np.ndarray,
    ) -> np.ndarray:
        """(n_queries, rows, cols) per-cell currents for a query block.

        The 3-D evaluation kernel behind both the serial and the batch
        search paths: the device physics broadcasts over a leading query
        axis, so a block of queries costs one numpy pass instead of a
        Python loop.  Per-element arithmetic is identical to the
        one-query case, which keeps serial and batch results
        bit-identical.
        """
        sl = np.asarray(sl_block, dtype=float)
        dl = np.asarray(dl_block, dtype=int)
        if sl.ndim != 2 or sl.shape[1] != self.physical_cols:
            raise ValueError(
                f"expected (n, {self.physical_cols}) SL block, got "
                f"{sl.shape}"
            )
        if dl.shape != sl.shape:
            raise ValueError("SL and DL blocks must have equal shapes")
        cell = self.tech.cell
        if dl.size and (dl.min() < 0 or dl.max() > cell.max_vds_multiple):
            raise ValueError("DL multiple outside the selector's range")

        return fast_cell_currents(
            sl[:, None, :],
            dl[:, None, :],
            self.vth[None, :, :],
            self._resistance[None, :, :],
            self.tech.fefet,
            cell,
        )

    def _cell_sums(self, currents: np.ndarray) -> np.ndarray:
        """(n, rows, cells) per-cell partial sums of (n, rows, cols)
        currents: each encoded element's ``cell_fanout`` FeFET columns
        aggregate first.  Both the serial and every batch path reduce
        through this same two-stage tree, which keeps them bit-identical
        and lets the bias-alphabet fast path precompute per-cell sums.
        """
        if self.cell_fanout == 1:
            return currents
        n = currents.shape[0]
        return currents.reshape(
            n, self.rows, self.cells, self.cell_fanout
        ).sum(axis=3)

    def _row_currents_block(
        self, sl_block: np.ndarray, dl_block: np.ndarray
    ) -> np.ndarray:
        """(n_queries, rows) aggregated, gain-scaled ScL currents."""
        currents = self.cell_currents_block(sl_block, dl_block)
        # Per-row sensing gain: residual ScL clamp error scales every
        # cell's Vds in a row, hence the whole row reading.
        return (
            self._cell_sums(currents).sum(axis=2)
            * self.variation.row_gain[None, :]
        )

    def search(
        self,
        sl_voltages: Sequence[float],
        dl_multiples: Sequence[int],
        active_rows: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """One associative search: bias, aggregate, LTA-decide.

        ``active_rows`` optionally masks rows out of the competition (used
        by iterative top-k search); masked rows still conduct but their
        LTA branch is disabled.
        """
        sl = np.asarray(sl_voltages, dtype=float)
        dl = np.asarray(dl_multiples, dtype=int)
        if sl.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} SL voltages, got {sl.shape}"
            )
        if dl.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} DL levels, got {dl.shape}"
            )
        kernel_currents = self._generic_kernel_currents(
            sl[None, :], dl[None, :]
        )
        if kernel_currents is not None:
            row_currents = kernel_currents[0]
        else:
            row_currents = self._row_currents_block(
                sl[None, :], dl[None, :]
            )[0]

        active = self._validate_active_rows(active_rows)
        compete = self._masked_compete(row_currents[None, :], active)[0]

        decision = self._lta.decide(compete)
        timing = self.timing_model.search_timing(decision.margin)
        energy = self.energy_model.search_energy(row_currents, dl, timing)
        energy.add("lta", 0.0)  # ensure key exists even for 1-row arrays
        row_units = row_currents / self.tech.cell.unit_current
        return SearchResult(
            row_currents=row_currents,
            row_units=row_units,
            decision=decision,
            timing=timing,
            energy=energy,
        )

    def _validate_batch_bias(
        self, sl_matrix: np.ndarray, dl_matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sl_matrix = np.asarray(sl_matrix, dtype=float)
        dl_matrix = np.asarray(dl_matrix, dtype=int)
        if sl_matrix.ndim != 2 or sl_matrix.shape[1] != self.physical_cols:
            raise ValueError(
                f"expected (n, {self.physical_cols}) SL matrix, got "
                f"{sl_matrix.shape}"
            )
        if dl_matrix.shape != sl_matrix.shape:
            raise ValueError("SL and DL matrices must have equal shapes")
        return sl_matrix, dl_matrix

    def _resolve_chunk(self, chunk: Optional[int]) -> int:
        """Queries per numpy block; ``None`` auto-sizes to keep the
        working tensor cache-resident (~2^18 cells per block)."""
        if chunk is None:
            chunk = (1 << 18) // max(1, self.rows * self.physical_cols)
        return max(1, chunk)

    def _batch_row_currents(
        self,
        sl_matrix: np.ndarray,
        dl_matrix: np.ndarray,
        chunk: Optional[int],
    ) -> np.ndarray:
        """(n_queries, rows) row currents, evaluated in blocked 3-D numpy."""
        n_queries = sl_matrix.shape[0]
        chunk = self._resolve_chunk(chunk)
        row_currents = np.empty((n_queries, self.rows))
        for start in range(0, n_queries, chunk):
            stop = min(start + chunk, n_queries)
            row_currents[start:stop] = self._row_currents_block(
                sl_matrix[start:stop], dl_matrix[start:stop]
            )
        return row_currents

    def _bias_current_table(
        self, sl_values: np.ndarray, dl_values: np.ndarray
    ) -> np.ndarray:
        """(n_values, rows, cells) per-cell current sums per alphabet entry.

        Cell currents for every alphabet row are evaluated through the
        shared physics kernel and pre-reduced over each cell's
        ``cell_fanout`` columns (the same within-cell tree
        :meth:`_cell_sums` applies everywhere).  Memoised against the
        write generation: re-programming any row (or a new bias
        alphabet) invalidates the table, while back-to-back searches —
        the Monte Carlo / inference hot path — reuse it.
        """
        key = (
            self.write_generation,
            sl_values.tobytes(),
            dl_values.tobytes(),
        )
        if self._bias_table_cache is not None:
            cached_key, table = self._bias_table_cache
            if cached_key == key:
                return table
        table = self._cell_sums(
            self.cell_currents_block(sl_values, dl_values)
        )
        self._bias_table_cache = (key, table)
        return table

    def _row_currents_from_table(
        self,
        table: np.ndarray,
        value_index: np.ndarray,
        chunk: Optional[int],
    ) -> np.ndarray:
        """(n_queries, rows) row currents via the bias-alphabet table.

        Per block, the (chunk, rows, cells) per-cell sum tensor is
        assembled by value-select from ``table`` — the per-cell floats
        are exactly the ones :meth:`_row_currents_block` produces, so
        the subsequent (identical) reduction keeps this path
        bit-identical to the generic kernel at a fraction of its cost.
        """
        n_queries, n_values = value_index.shape[0], table.shape[0]
        chunk = self._resolve_chunk(chunk)
        row_currents = np.empty((n_queries, self.rows))
        for start in range(0, n_queries, chunk):
            stop = min(start + chunk, n_queries)
            block_index = value_index[start:stop][:, None, :]
            if n_values > 1:
                currents = np.where(
                    block_index == 0, table[0], table[1]
                )
            else:
                currents = np.broadcast_to(
                    table[0], (stop - start, *table.shape[1:])
                )
            for v in range(2, n_values):
                np.copyto(currents, table[v], where=block_index == v)
            row_currents[start:stop] = (
                currents.sum(axis=2) * self.variation.row_gain[None, :]
            )
        return row_currents

    # ------------------------------------------------------------------
    # Quantized integer kernel
    # ------------------------------------------------------------------
    def set_search_alphabet(
        self, sl_values: np.ndarray, dl_values: np.ndarray
    ) -> None:
        """Register the bias alphabet generic searches are drawn from.

        The mapping layer (:class:`repro.core.engine.FeReX`) calls this
        with its per-value bias tables; generic :meth:`search` /
        :meth:`search_batch` / :meth:`search_k_batch` calls then try to
        match their bias matrices back onto the alphabet and route
        through the quantized kernel, keeping them bit-identical to the
        values fast path.  Unrelated bias matrices simply fail the match
        and fall back to the float physics.
        """
        sl_values, dl_values = self._validate_batch_bias(
            sl_values, dl_values
        )
        self._alphabet = (sl_values, dl_values)

    def _variation_is_ideal(self) -> bool:
        """True when every sampled device/comparator variation is
        exactly nominal — the static half of the kernel's eligibility
        gate (a shared per-symbol LUT cannot model per-device spread).
        Cached: the variation object is fixed at construction."""
        if self._ideal_variation is None:
            v = self.variation
            self._ideal_variation = bool(
                not np.any(v.vth_offset)
                and np.all(v.r_factor == 1.0)
                and not np.any(v.lta_offset)
                and np.all(v.row_gain == 1.0)
            )
        return self._ideal_variation

    def _kernel_for(self, sl_values: np.ndarray, dl_values: np.ndarray):
        """The compiled :class:`repro.core.kernel.QuantizedKernel` for a
        bias alphabet, or ``None`` when the array is ineligible.

        Memoised against the write generation exactly like the float
        bias table; ineligible combinations memoise ``None`` so the
        float path does not re-attempt compilation on every batch.
        """
        if not self.kernel_enabled:
            return None
        key = (
            self.write_generation,
            sl_values.tobytes(),
            dl_values.tobytes(),
        )
        if self._kernel_cache is not None:
            cached_key, kernel = self._kernel_cache
            if cached_key == key:
                return kernel
        kernel = self._compile_kernel(sl_values, dl_values)
        self._kernel_cache = (key, kernel)
        return kernel

    def _compile_kernel(self, sl_values: np.ndarray, dl_values: np.ndarray):
        """Compile (codes, LUT) for one write generation; ``None`` when
        ineligible (varied/drifted devices, a bias alphabet that is not
        cell-uniform, or a geometry beyond the exact-integer bound).
        """
        if not self._variation_is_ideal() or np.any(self._disturb_drift):
            return None
        k = self.cell_fanout
        n_values = sl_values.shape[0]
        sl_cells = sl_values.reshape(n_values, self.cells, k)
        dl_cells = dl_values.reshape(n_values, self.cells, k)
        # A shared (value, symbol) LUT needs every cell to see the same
        # per-value bias — the engine tiles one element alphabet across
        # all cells, so this holds on every mapped configuration.
        if self.cells > 1 and (
            np.any(sl_cells != sl_cells[:, :1, :])
            or np.any(dl_cells != dl_cells[:, :1, :])
        ):
            return None
        # Deferred import: repro.core pulls in the engine, which imports
        # this module back.
        from ..core.kernel import (
            KernelOverflowError,
            LUTKernel,
            QuantizedKernel,
            select_quantum,
        )

        state = self.levels.reshape(self.rows * self.cells, k)
        _, first, codes = np.unique(
            state, axis=0, return_index=True, return_inverse=True
        )
        codes = codes.reshape(self.rows, self.cells)
        vth_symbols = self._vth_nominal.reshape(
            self.rows * self.cells, k
        )[first]
        raw = compile_current_lut(
            sl_cells[:, 0, :], dl_cells[:, 0, :], vth_symbols, self.tech
        )
        try:
            quantum = select_quantum(
                float(np.abs(raw).max()) if raw.size else 0.0,
                self.cells,
                self.tech.cell.unit_current,
            )
            kernel = LUTKernel(
                codes, np.rint(raw / quantum).astype(np.int64)
            )
        except KernelOverflowError:
            return None
        return QuantizedKernel(
            kernel=kernel, quantum=quantum, raw_currents=raw
        )

    def quantized_kernel(self):
        """The compiled kernel for the registered search alphabet, or
        ``None`` when no alphabet is registered or the array is
        ineligible (varied devices, kernel disabled, overflow)."""
        if self._alphabet is None:
            return None
        return self._kernel_for(*self._alphabet)

    def _match_value_index(
        self,
        sl_matrix: np.ndarray,
        dl_matrix: np.ndarray,
        sl_values: np.ndarray,
        dl_values: np.ndarray,
    ) -> Optional[np.ndarray]:
        """(n, cells) alphabet row per query cell, or ``None`` when any
        cell's bias is not an exact alphabet entry.

        Only called once the alphabet compiled (hence is cell-uniform),
        so each query cell is compared against the per-element alphabet
        slice.  Exact float equality is intentional: conforming queries
        are tiled from the very same tables, and anything else must take
        the physics path.
        """
        n = sl_matrix.shape[0]
        n_values = sl_values.shape[0]
        k = self.cell_fanout
        sl_q = sl_matrix.reshape(n, self.cells, k)
        dl_q = dl_matrix.reshape(n, self.cells, k)
        sl_a = sl_values.reshape(n_values, self.cells, k)[:, 0, :]
        dl_a = dl_values.reshape(n_values, self.cells, k)[:, 0, :]
        match = np.all(
            sl_q[:, :, None, :] == sl_a[None, None, :, :], axis=3
        ) & np.all(dl_q[:, :, None, :] == dl_a[None, None, :, :], axis=3)
        if not match.any(axis=2).all():
            return None
        return match.argmax(axis=2)

    def _generic_kernel_currents(
        self, sl_matrix: np.ndarray, dl_matrix: np.ndarray
    ) -> Optional[np.ndarray]:
        """(n, rows) kernel row currents for a generic bias matrix drawn
        from the registered alphabet; ``None`` routes the caller to the
        float physics path."""
        if self._alphabet is None or not self.kernel_enabled:
            return None
        sl_values, dl_values = self._alphabet
        kernel = self._kernel_for(sl_values, dl_values)
        if kernel is None:
            return None
        value_index = self._match_value_index(
            sl_matrix, dl_matrix, sl_values, dl_values
        )
        if value_index is None:
            return None
        return kernel.row_currents(value_index)

    def _validate_value_bias(
        self,
        sl_values: np.ndarray,
        dl_values: np.ndarray,
        value_index: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        sl_values, dl_values = self._validate_batch_bias(
            sl_values, dl_values
        )
        value_index = np.asarray(value_index, dtype=int)
        if value_index.ndim != 2 or value_index.shape[1] != self.cells:
            raise ValueError(
                f"expected (n, {self.cells}) per-cell value index, got "
                f"{value_index.shape}"
            )
        n_values = sl_values.shape[0]
        if value_index.size and (
            value_index.min() < 0 or value_index.max() >= n_values
        ):
            raise ValueError(
                f"value index outside [0, {n_values}) bias alphabet"
            )
        return sl_values, dl_values, value_index

    def _first_query_dl(
        self, dl_values: np.ndarray, value_index: np.ndarray
    ) -> Optional[np.ndarray]:
        """(physical_cols,) drain levels of the first query, for the
        nominal-activity energy estimate; ``None`` on empty batches."""
        if not len(value_index):
            return None
        per_col = np.repeat(value_index[0], self.cell_fanout)
        return dl_values[per_col, np.arange(self.physical_cols)]

    def _nominal_batch_accounting(
        self, dl_first: Optional[np.ndarray], row_currents: np.ndarray
    ) -> tuple[SearchTiming, EnergyBreakdown]:
        """Per-query timing/energy at nominal activity (first query)."""
        n_queries = row_currents.shape[0]
        timing = self.timing_model.search_timing()
        energy = self.energy_model.search_energy(
            row_currents[0] if n_queries else np.zeros(self.rows),
            dl_first
            if dl_first is not None
            else np.zeros(self.physical_cols, int),
            timing,
        )
        energy.add("lta", 0.0)  # defensive parity with serial search()
        return timing, energy

    def _validate_active_rows(
        self, active_rows: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """Normalise the optional competition mask to a (rows,) bool
        array (``None`` = all rows compete)."""
        if active_rows is None:
            return None
        active_rows = np.asarray(active_rows, dtype=bool)
        if active_rows.shape != (self.rows,):
            raise ValueError("active_rows must have one flag per row")
        if not active_rows.any():
            raise ValueError(
                "active_rows must leave at least one row competing"
            )
        return active_rows

    def _masked_compete(
        self, row_currents: np.ndarray, active: Optional[np.ndarray]
    ) -> np.ndarray:
        """Competition currents with masked rows' LTA branches disabled
        (the interface MUX disconnects their ScL, modelled as +inf)."""
        if active is None:
            return row_currents.copy()
        return np.where(active[None, :], row_currents, np.inf)

    def _finish_search_batch(
        self,
        row_currents: np.ndarray,
        dl_first: Optional[np.ndarray],
        active: Optional[np.ndarray] = None,
    ) -> "BatchSearchResult":
        decisions = self._lta.decide_batch(
            self._masked_compete(row_currents, active)
        )
        timing, energy = self._nominal_batch_accounting(
            dl_first, row_currents
        )
        return BatchSearchResult(
            winners=decisions.winners.astype(int),
            row_units=row_currents / self.tech.cell.unit_current,
            timing_per_query=timing,
            energy_per_query=energy,
        )

    def _finish_search_k_batch(
        self,
        row_currents: np.ndarray,
        dl_first: Optional[np.ndarray],
        k: int,
        active: Optional[np.ndarray] = None,
    ) -> "BatchSearchKResult":
        n_queries = row_currents.shape[0]
        compete = self._masked_compete(row_currents, active)
        winners = np.empty((n_queries, k), dtype=int)
        arange = np.arange(n_queries)
        for round_ in range(k):
            decisions = self._lta.decide_batch(compete)
            winners[:, round_] = decisions.winners
            compete[arange, decisions.winners] = np.inf
        timing, energy = self._nominal_batch_accounting(
            dl_first, row_currents
        )
        return BatchSearchKResult(
            winners=winners,
            row_units=row_currents / self.tech.cell.unit_current,
            timing_per_query=timing,
            energy_per_query=energy,
        )

    def _finish_search_k_batch_ranked(
        self,
        row_currents: np.ndarray,
        dl_first: Optional[np.ndarray],
        k: int,
        active: Optional[np.ndarray] = None,
    ) -> "BatchSearchKResult":
        """Kernel-path equivalent of :meth:`_finish_search_k_batch`.

        With every comparator offset zero — a kernel eligibility
        condition — each LTA round is a stable argmin, and masking the
        winner to ``+inf`` then re-deciding selects exactly the next
        entry of the original stable order.  The ``k`` rounds therefore
        collapse to the first ``k`` columns of one stable argsort,
        bit-identical winners at a fraction of the cost.
        """
        compete = self._masked_compete(row_currents, active)
        winners = np.argsort(compete, axis=1, kind="stable")[:, :k]
        timing, energy = self._nominal_batch_accounting(
            dl_first, row_currents
        )
        return BatchSearchKResult(
            winners=winners.astype(int),
            row_units=row_currents / self.tech.cell.unit_current,
            timing_per_query=timing,
            energy_per_query=energy,
        )

    def _check_batch_k(
        self, k: int, active: Optional[np.ndarray]
    ) -> None:
        n_competing = self.rows if active is None else int(active.sum())
        if not 1 <= k <= n_competing:
            raise ValueError(f"k={k} outside [1, {n_competing}]")

    def search_batch(
        self,
        sl_matrix: np.ndarray,
        dl_matrix: np.ndarray,
        chunk: Optional[int] = None,
        active_rows: Optional[np.ndarray] = None,
    ) -> "BatchSearchResult":
        """Vectorised search over a batch of arbitrary bias vectors.

        Electrically equivalent to calling :meth:`search` per query (the
        array is time-multiplexed; nothing is shared between queries) and
        bit-identical to it by construction: cell currents are evaluated
        through the same blocked 3-D kernel
        (:meth:`cell_currents_block`, in ``(chunk, rows, cols)`` tensors)
        and winners come from the same vectorised LTA decision path
        (:meth:`LoserTakeAll.decide_batch`) that serial :meth:`search`
        delegates to — including comparator offsets and stable tie
        ordering.  Per-query timing/energy are identical across the
        batch at the nominal margin, so the models are evaluated once.

        When the batch is drawn from a small bias alphabet (every query
        picks each column's bias from a few encoded levels — the AM
        setting), :meth:`search_batch_values` is substantially faster.

        Parameters
        ----------
        sl_matrix / dl_matrix:
            (n_queries, physical_cols) search voltages and drain levels.
        chunk:
            Queries per numpy block (bounds peak memory at
            ``chunk * rows * cols`` floats); values below 1 are clamped
            to 1, ``None`` auto-sizes for cache residency.
        active_rows:
            Optional (rows,) bool mask; ``False`` rows still conduct but
            their LTA branch is disabled (used for unwritten capacity
            and tombstoned rows in a :class:`repro.index.FerexIndex`
            bank), exactly as in serial :meth:`search`.
        """
        sl_matrix, dl_matrix = self._validate_batch_bias(
            sl_matrix, dl_matrix
        )
        active = self._validate_active_rows(active_rows)
        row_currents = self._generic_kernel_currents(sl_matrix, dl_matrix)
        if row_currents is None:
            row_currents = self._batch_row_currents(
                sl_matrix, dl_matrix, chunk
            )
        dl_first = dl_matrix[0] if len(dl_matrix) else None
        return self._finish_search_batch(row_currents, dl_first, active)

    def search_batch_values(
        self,
        sl_values: np.ndarray,
        dl_values: np.ndarray,
        value_index: np.ndarray,
        chunk: Optional[int] = None,
        active_rows: Optional[np.ndarray] = None,
    ) -> "BatchSearchResult":
        """Vectorised batch search over a small per-column bias alphabet.

        The associative-memory fast path: every query biases column ``c``
        with one of ``n_values`` encoded levels, so per-cell currents are
        precomputed once into a ``(n_values, rows, cols)`` table (cached
        across calls until the array is re-programmed) and each query
        block is assembled by value-select instead of re-evaluating the
        device physics.  Results are bit-identical to
        :meth:`search_batch` / looped :meth:`search` on the equivalent
        expanded matrices — the summed per-cell floats are exactly the
        ones the shared physics kernel produces.

        Parameters
        ----------
        sl_values / dl_values:
            (n_values, physical_cols) bias alphabet: row ``v`` holds the
            column biases a query element with value ``v`` applies to
            its cell's ``cell_fanout`` columns.
        value_index:
            (n_queries, cells) integer alphabet row per query per
            encoded element.
        chunk / active_rows:
            As in :meth:`search_batch`.
        """
        sl_values, dl_values, value_index = self._validate_value_bias(
            sl_values, dl_values, value_index
        )
        active = self._validate_active_rows(active_rows)
        kernel = self._kernel_for(sl_values, dl_values)
        if kernel is not None:
            row_currents = kernel.row_currents(value_index)
        else:
            table = self._bias_current_table(sl_values, dl_values)
            row_currents = self._row_currents_from_table(
                table, value_index, chunk
            )
        return self._finish_search_batch(
            row_currents, self._first_query_dl(dl_values, value_index),
            active,
        )

    def readout_batch_values(
        self,
        sl_values: np.ndarray,
        dl_values: np.ndarray,
        value_index: np.ndarray,
        chunk: Optional[int] = None,
    ) -> np.ndarray:
        """(n_queries, rows) unit-current readings over the bias
        alphabet — :meth:`search_batch_values` without the comparator.

        The shortlist/coarse-tier primitive: a caller that ranks rows
        itself (e.g. merging readouts across banks) only needs the
        match-line currents, so the LTA decision and the per-query
        timing/energy accounting of a full search would be pure
        overhead.  The readings are exactly the ``row_units`` the full
        search returns — same kernel, same float path.
        """
        sl_values, dl_values, value_index = self._validate_value_bias(
            sl_values, dl_values, value_index
        )
        kernel = self._kernel_for(sl_values, dl_values)
        if kernel is not None:
            row_currents = kernel.row_currents(value_index)
        else:
            table = self._bias_current_table(sl_values, dl_values)
            row_currents = self._row_currents_from_table(
                table, value_index, chunk
            )
        return row_currents / self.tech.cell.unit_current

    def search_k(
        self,
        sl_voltages: Sequence[float],
        dl_multiples: Sequence[int],
        k: int,
    ) -> list[SearchResult]:
        """Iterative k-nearest search: mask each winner and re-decide."""
        if not 1 <= k <= self.rows:
            raise ValueError(f"k={k} outside [1, {self.rows}]")
        active = np.ones(self.rows, dtype=bool)
        results = []
        for _ in range(k):
            result = self.search(sl_voltages, dl_multiples, active)
            results.append(result)
            active[result.winner] = False
        return results

    def search_k_batch(
        self,
        sl_matrix: np.ndarray,
        dl_matrix: np.ndarray,
        k: int,
        chunk: Optional[int] = None,
        active_rows: Optional[np.ndarray] = None,
    ) -> "BatchSearchKResult":
        """Vectorised iterative k-nearest search over a query batch.

        Equivalent to calling :meth:`search_k` per query: row currents
        are evaluated once through the blocked 3-D kernel, then the
        vectorised LTA decides ``k`` rounds, masking each round's winner
        out of the competition (the interface MUX disconnecting the ScL,
        exactly as in the serial flow).  ``active_rows`` pre-masks rows
        out of every round (unwritten capacity / tombstones); ``k`` is
        then bounded by the number of competing rows.
        """
        sl_matrix, dl_matrix = self._validate_batch_bias(
            sl_matrix, dl_matrix
        )
        active = self._validate_active_rows(active_rows)
        self._check_batch_k(k, active)
        row_currents = self._generic_kernel_currents(sl_matrix, dl_matrix)
        if row_currents is not None:
            dl_first = dl_matrix[0] if len(dl_matrix) else None
            return self._finish_search_k_batch_ranked(
                row_currents, dl_first, k, active
            )
        row_currents = self._batch_row_currents(sl_matrix, dl_matrix, chunk)
        dl_first = dl_matrix[0] if len(dl_matrix) else None
        return self._finish_search_k_batch(row_currents, dl_first, k, active)

    def search_k_batch_values(
        self,
        sl_values: np.ndarray,
        dl_values: np.ndarray,
        value_index: np.ndarray,
        k: int,
        chunk: Optional[int] = None,
        active_rows: Optional[np.ndarray] = None,
    ) -> "BatchSearchKResult":
        """Bias-alphabet fast path of :meth:`search_k_batch`.

        Same value-select current assembly as
        :meth:`search_batch_values`, followed by the ``k``-round
        winner-masking LTA flow over the ``active_rows`` competition.
        """
        sl_values, dl_values, value_index = self._validate_value_bias(
            sl_values, dl_values, value_index
        )
        active = self._validate_active_rows(active_rows)
        self._check_batch_k(k, active)
        kernel = self._kernel_for(sl_values, dl_values)
        if kernel is not None:
            return self._finish_search_k_batch_ranked(
                kernel.row_currents(value_index),
                self._first_query_dl(dl_values, value_index), k, active,
            )
        table = self._bias_current_table(sl_values, dl_values)
        row_currents = self._row_currents_from_table(
            table, value_index, chunk
        )
        return self._finish_search_k_batch(
            row_currents, self._first_query_dl(dl_values, value_index), k,
            active,
        )
