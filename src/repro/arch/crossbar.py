"""Behavioural simulator of the 1FeFET1R crossbar array.

This is the Python stand-in for the paper's Cadence array netlist.  It
keeps per-device state (threshold voltage, series resistance — both with
sampled process variation), applies the paper's biasing schemes, and
evaluates search currents vectorised over the whole array:

* **write/erase** (paper Sec. III-A): one row selected (RL = 0 V), all
  others inhibited at ``Vwrite / 2`` so their gate stacks never see a
  switching field.  The simulator tracks disturb exposure of inhibited
  cells and drifts their threshold if the inhibited stack voltage
  approaches the coercive voltage — with the paper's scheme it never does,
  which a regression test asserts.
* **search**: search voltages on the SL gates, integer-multiple ``Vds`` on
  the DLs, every ScL clamped at the op-amp reference.  A FeFET conducts
  ``Vds / R`` when ON (clamp regime) and its subthreshold leakage when
  OFF.  Row currents aggregate along the ScL and feed the LTA.

The electrical model matches :mod:`repro.devices.cell` (the fast path)
but evaluates in numpy across the array, which is what makes Monte Carlo
over 100 array instances x thousands of queries tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..circuits.lta import LoserTakeAll, LTADecision
from ..devices.tech import TechConfig, DEFAULT_TECH, THERMAL_VOLTAGE
from ..devices.variation import ArrayVariation, nominal_variation
from .energy import EnergyBreakdown, EnergyModel
from .parasitics import ArrayParasitics, extract
from .timing import SearchTiming, TimingModel


@dataclass
class SearchResult:
    """Everything one array search produces."""

    #: (rows,) aggregated ScL currents, amps.
    row_currents: np.ndarray
    #: (rows,) currents expressed in nominal unit currents (distance reading).
    row_units: np.ndarray
    #: LTA decision (winner row index + electrical metadata).
    decision: LTADecision
    #: Latency breakdown.
    timing: SearchTiming
    #: Energy breakdown.
    energy: EnergyBreakdown

    @property
    def winner(self) -> int:
        return self.decision.winner

    def ranked_rows(self) -> np.ndarray:
        """Row indices sorted by measured current (closest first)."""
        return np.argsort(self.row_currents, kind="stable")


@dataclass
class BatchSearchResult:
    """Vectorised outcome of a query batch."""

    #: (n_queries,) LTA winner per query.
    winners: np.ndarray
    #: (n_queries, rows) distance readings in unit currents.
    row_units: np.ndarray
    #: Latency of each search (identical across the batch).
    timing_per_query: SearchTiming
    #: Energy of each search (nominal-activity estimate).
    energy_per_query: EnergyBreakdown

    @property
    def n_queries(self) -> int:
        return len(self.winners)

    @property
    def total_time(self) -> float:
        """Wall time of the serialised batch, seconds."""
        return self.n_queries * self.timing_per_query.total

    @property
    def total_energy(self) -> float:
        """Energy of the serialised batch, joules."""
        return self.n_queries * self.energy_per_query.total


class FeReXArray:
    """A rows x physical_cols 1FeFET1R crossbar with LTA read-out.

    ``physical_cols`` counts FeFET columns; the data-to-device fan-out
    (K FeFETs per encoded element) is handled by the mapping layer in
    :mod:`repro.core.engine`, which drives this class with per-column
    voltages.
    """

    #: Threshold drift per disturb event, volts per volt of overdrive
    #: beyond the safe stack voltage.
    DISTURB_DRIFT_PER_VOLT = 0.01
    #: Multiple of the coercive voltage a half-selected stack tolerates
    #: for one write-pulse duration without measurable switching.
    #: Ferroelectric switching is strongly field-time nonlinear
    #: (nucleation-limited switching): a full-select pulse at ~4x Vc
    #: switches in a microsecond, while a half-select stack at ~1.7x Vc
    #: needs orders of magnitude longer than the pulse [Ni, EDL 2018].
    #: The V/2 inhibition scheme is designed exactly around this margin.
    DISTURB_SAFE_FRACTION = 2.0

    def __init__(
        self,
        rows: int,
        physical_cols: int,
        tech: Optional[TechConfig] = None,
        variation: Optional[ArrayVariation] = None,
    ):
        if rows < 1 or physical_cols < 1:
            raise ValueError("array needs at least one row and one column")
        self.rows = rows
        self.physical_cols = physical_cols
        self.tech = tech or DEFAULT_TECH
        if variation is None:
            variation = nominal_variation(rows, physical_cols)
        if variation.shape != (rows, physical_cols):
            raise ValueError(
                f"variation shape {variation.shape} != "
                f"({rows}, {physical_cols})"
            )
        self.variation = variation

        fefet = self.tech.fefet
        erased = fefet.vth_low + fefet.memory_window
        #: Programmed nominal threshold per cell (erased initially).
        self._vth_nominal = np.full((rows, physical_cols), erased)
        #: Disturb-induced drift accumulated per cell, volts.
        self._disturb_drift = np.zeros((rows, physical_cols))
        #: Series resistance per cell, ohms (static variation applied).
        self._resistance = (
            self.tech.cell.resistance * variation.r_factor
        )
        #: Stored MLC level per cell, -1 = erased.
        self.levels = np.full((rows, physical_cols), -1, dtype=int)

        self.parasitics: ArrayParasitics = extract(
            rows,
            physical_cols,
            wire=self.tech.wire,
            cell=self.tech.cell,
            feature_size=self.tech.feature_size,
        )
        self.energy_model = EnergyModel(
            rows, physical_cols, self.tech, self.parasitics
        )
        self.timing_model = TimingModel(
            rows, physical_cols, self.tech, self.parasitics
        )
        self._lta = LoserTakeAll(
            rows, self.tech.lta, offsets=variation.lta_offset
        )
        #: Cumulative write energy, joules.
        self.write_energy_total = 0.0
        #: Count of disturb-unsafe exposures observed (should stay 0).
        self.disturb_violations = 0

    # ------------------------------------------------------------------
    # Observable device state
    # ------------------------------------------------------------------
    @property
    def vth(self) -> np.ndarray:
        """Actual per-cell thresholds: nominal + D2D offset + drift."""
        return (
            self._vth_nominal
            + self.variation.vth_offset
            + self._disturb_drift
        )

    @property
    def resistance(self) -> np.ndarray:
        """Actual per-cell series resistance, ohms."""
        return self._resistance

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def erase_row(self, row: int) -> None:
        """Block-erase one row to the highest threshold state."""
        self._check_row(row)
        fefet = self.tech.fefet
        self._vth_nominal[row, :] = fefet.vth_low + fefet.memory_window
        self.levels[row, :] = -1
        self._account_write(self.physical_cols)
        self._apply_disturb(row)

    def program_row(self, row: int, levels: Sequence[int]) -> None:
        """Erase-then-program a full row of MLC levels.

        ``levels`` must contain valid level indices
        (``0 .. n_vth_levels-1``); the whole row is written in one
        erase + one program pulse per level group, with every other row
        inhibited.
        """
        self._check_row(row)
        levels = np.asarray(levels, dtype=int)
        if levels.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} levels, got {levels.shape}"
            )
        fefet = self.tech.fefet
        if levels.min() < 0 or levels.max() >= fefet.n_vth_levels:
            raise ValueError("level outside the device MLC range")

        self.erase_row(row)
        nominal = np.array([fefet.vth_level(l) for l in levels])
        self._vth_nominal[row, :] = nominal
        self.levels[row, :] = levels
        self._account_write(self.physical_cols)
        self._apply_disturb(row)

    def program_matrix(self, levels: np.ndarray) -> None:
        """Program every row of the array from a (rows, cols) level matrix."""
        levels = np.asarray(levels, dtype=int)
        if levels.shape != (self.rows, self.physical_cols):
            raise ValueError(
                f"expected shape ({self.rows}, {self.physical_cols}), "
                f"got {levels.shape}"
            )
        for row in range(self.rows):
            self.program_row(row, levels[row])

    def _account_write(self, n_cells: int) -> None:
        self.write_energy_total += self.energy_model.write_energy(
            n_cells
        ).total

    def _apply_disturb(self, written_row: int) -> None:
        """Model half-select stress on every *other* row.

        The inhibited stack voltage is ``Vwrite - Vwrite/2 = Vwrite/2``.
        If that exceeds the safe fraction of the coercive voltage the
        threshold of inhibited cells drifts down slightly and the event is
        counted; with the paper's inhibition scheme it never triggers.
        """
        fefet = self.tech.fefet
        half = 0.5 * self.tech.driver.write_voltage
        safe = self.DISTURB_SAFE_FRACTION * fefet.coercive_voltage
        overdrive = half - safe
        if overdrive <= 0:
            return
        mask = np.ones(self.rows, dtype=bool)
        mask[written_row] = False
        self._disturb_drift[mask, :] -= (
            self.DISTURB_DRIFT_PER_VOLT * overdrive
        )
        self.disturb_violations += int(mask.sum()) * self.physical_cols

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} outside [0, {self.rows})")

    # ------------------------------------------------------------------
    # Search path
    # ------------------------------------------------------------------
    def cell_currents(
        self,
        sl_voltages: Sequence[float],
        dl_multiples: Sequence[int],
    ) -> np.ndarray:
        """(rows, cols) per-cell currents under the given search bias.

        Vectorised fast-path model: ON cells are clamped to ``Vds / R``
        (the series resistor dominates); OFF cells leak the subthreshold
        current capped by the clamp.
        """
        sl = np.asarray(sl_voltages, dtype=float)
        dl = np.asarray(dl_multiples, dtype=int)
        if sl.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} SL voltages, got {sl.shape}"
            )
        if dl.shape != (self.physical_cols,):
            raise ValueError(
                f"expected {self.physical_cols} DL levels, got {dl.shape}"
            )
        cell = self.tech.cell
        if dl.min() < 0 or dl.max() > cell.max_vds_multiple:
            raise ValueError("DL multiple outside the selector's range")

        fefet = self.tech.fefet
        vds = dl * cell.vds_unit  # (cols,)
        vth = self.vth  # (rows, cols)
        clamp = vds[None, :] / self._resistance  # (rows, cols)

        overdrive = sl[None, :] - vth
        on = overdrive > 0

        exponent = np.clip(
            overdrive / (fefet.subthreshold_ideality * THERMAL_VOLTAGE),
            -200.0,
            0.0,
        )
        leak = np.maximum(
            fefet.i0_subthreshold * np.exp(exponent), fefet.i_off_floor
        )
        off_current = np.minimum(leak, clamp)

        on_current = np.minimum(clamp, fefet.i_sat_max)
        currents = np.where(on, on_current, off_current)
        currents[:, vds == 0.0] = 0.0
        return currents

    def search(
        self,
        sl_voltages: Sequence[float],
        dl_multiples: Sequence[int],
        active_rows: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """One associative search: bias, aggregate, LTA-decide.

        ``active_rows`` optionally masks rows out of the competition (used
        by iterative top-k search); masked rows still conduct but their
        LTA branch is disabled.
        """
        currents = self.cell_currents(sl_voltages, dl_multiples)
        # Per-row sensing gain: residual ScL clamp error scales every
        # cell's Vds in a row, hence the whole row reading.
        row_currents = currents.sum(axis=1) * self.variation.row_gain

        compete = row_currents.copy()
        if active_rows is not None:
            active_rows = np.asarray(active_rows, dtype=bool)
            if active_rows.shape != (self.rows,):
                raise ValueError("active_rows must have one flag per row")
            compete[~active_rows] = np.inf

        decision = self._lta.decide(compete)
        timing = self.timing_model.search_timing(decision.margin)
        energy = self.energy_model.search_energy(
            row_currents, np.asarray(dl_multiples, dtype=int), timing
        )
        energy.add("lta", 0.0)  # ensure key exists even for 1-row arrays
        row_units = row_currents / self.tech.cell.unit_current
        return SearchResult(
            row_currents=row_currents,
            row_units=row_units,
            decision=decision,
            timing=timing,
            energy=energy,
        )

    def search_batch(
        self,
        sl_matrix: np.ndarray,
        dl_matrix: np.ndarray,
        chunk: int = 64,
    ) -> "BatchSearchResult":
        """Vectorised search over a batch of queries.

        Electrically equivalent to calling :meth:`search` per query (the
        array is time-multiplexed; nothing is shared between queries) but
        evaluated in blocked numpy, which is what makes simulating
        thousands of HDC inferences tractable.  Per-query timing/energy
        are identical across the batch at the nominal margin, so the
        models are evaluated once.

        Parameters
        ----------
        sl_matrix / dl_matrix:
            (n_queries, physical_cols) search voltages and drain levels.
        chunk:
            Queries per numpy block (bounds peak memory at
            ``chunk * rows * cols`` floats).
        """
        sl_matrix = np.asarray(sl_matrix, dtype=float)
        dl_matrix = np.asarray(dl_matrix, dtype=int)
        if sl_matrix.ndim != 2 or sl_matrix.shape[1] != self.physical_cols:
            raise ValueError(
                f"expected (n, {self.physical_cols}) SL matrix, got "
                f"{sl_matrix.shape}"
            )
        if dl_matrix.shape != sl_matrix.shape:
            raise ValueError("SL and DL matrices must have equal shapes")

        n_queries = sl_matrix.shape[0]
        winners = np.empty(n_queries, dtype=int)
        row_units = np.empty((n_queries, self.rows))
        for start in range(0, n_queries, max(1, chunk)):
            stop = min(start + max(1, chunk), n_queries)
            for qi in range(start, stop):
                currents = self.cell_currents(
                    sl_matrix[qi], dl_matrix[qi]
                )
                row_current = (
                    currents.sum(axis=1) * self.variation.row_gain
                )
                effective = row_current + self.variation.lta_offset
                winners[qi] = int(np.argmin(effective))
                row_units[qi] = (
                    row_current / self.tech.cell.unit_current
                )
        timing = self.timing_model.search_timing()
        energy = self.energy_model.search_energy(
            row_units[0] * self.tech.cell.unit_current
            if n_queries
            else np.zeros(self.rows),
            dl_matrix[0] if n_queries else np.zeros(self.physical_cols, int),
            timing,
        )
        return BatchSearchResult(
            winners=winners,
            row_units=row_units,
            timing_per_query=timing,
            energy_per_query=energy,
        )

    def search_k(
        self,
        sl_voltages: Sequence[float],
        dl_multiples: Sequence[int],
        k: int,
    ) -> list[SearchResult]:
        """Iterative k-nearest search: mask each winner and re-decide."""
        if not 1 <= k <= self.rows:
            raise ValueError(f"k={k} outside [1, {self.rows}]")
        active = np.ones(self.rows, dtype=bool)
        results = []
        for _ in range(k):
            result = self.search(sl_voltages, dl_multiples, active)
            results.append(result)
            active[result.winner] = False
        return results
