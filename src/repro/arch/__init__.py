"""Array-architecture substrate: crossbar simulator, wire parasitics,
energy and timing models.

Equivalent of the paper's array netlist plus the DESTINY/NeuroSim-style
macro models used for Fig. 6.
"""

from .area import AreaBreakdown, AreaModel
from .crossbar import (
    BatchSearchKResult,
    BatchSearchResult,
    FeReXArray,
    SearchResult,
)
from .energy import EnergyBreakdown, EnergyModel
from .parasitics import ArrayParasitics, LineParasitics, extract
from .timing import SearchTiming, TimingModel

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "ArrayParasitics",
    "BatchSearchKResult",
    "BatchSearchResult",
    "EnergyBreakdown",
    "EnergyModel",
    "FeReXArray",
    "LineParasitics",
    "SearchResult",
    "SearchTiming",
    "TimingModel",
]
