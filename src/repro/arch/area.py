"""Array area model (DESTINY-style floorplan estimate).

The 1FeFET1R cell is area-free beyond its transistor because the
resistor is integrated in the back end of line (paper Sec. II-A, citing
[Saito, VLSI 2021]), so the core area is cells x pitch^2.  Peripheral
blocks are estimated with per-instance footprints expressed in F^2,
which is how DESTINY and NeuroSim compose macro area.

The model answers the design questions the paper's cell-size ablation
raises: a smaller K (fewer FeFET columns per element) buys core area
linearly, while deeper drain ladders grow only the column periphery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..devices.tech import TechConfig, DEFAULT_TECH


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of one FeReX array instance, square meters."""

    core: float
    row_interface: float
    lta: float
    drivers: float
    decoder: float

    @property
    def total(self) -> float:
        return (
            self.core
            + self.row_interface
            + self.lta
            + self.drivers
            + self.decoder
        )

    @property
    def core_fraction(self) -> float:
        """Cell-array share of the total (efficiency metric)."""
        return self.core / self.total if self.total > 0 else 0.0


class AreaModel:
    """Floorplan estimator for a rows x physical_cols FeReX array."""

    #: Footprint of one row interface (MUX + clamp op-amp), F^2.
    ROW_INTERFACE_F2 = 6000.0
    #: Footprint of one LTA branch, F^2.
    LTA_BRANCH_F2 = 900.0
    #: Fixed LTA decision stage, F^2.
    LTA_FIXED_F2 = 4000.0
    #: Per-column SL driver + one pass gate per drain rail, F^2.
    COLUMN_DRIVER_F2 = 250.0
    PER_RAIL_F2 = 120.0
    #: Row decoder per address bit, F^2.
    DECODER_PER_BIT_F2 = 800.0

    def __init__(
        self,
        rows: int,
        physical_cols: int,
        tech: Optional[TechConfig] = None,
    ):
        if rows < 1 or physical_cols < 1:
            raise ValueError("array must have rows and columns")
        self.rows = rows
        self.physical_cols = physical_cols
        self.tech = tech or DEFAULT_TECH

    def breakdown(self) -> AreaBreakdown:
        f2 = self.tech.feature_size**2
        cell = self.tech.cell
        core = self.rows * self.physical_cols * cell.area_f2 * f2
        row_iface = self.rows * self.ROW_INTERFACE_F2 * f2
        lta = (
            self.rows * self.LTA_BRANCH_F2 + self.LTA_FIXED_F2
        ) * f2
        drivers = (
            self.physical_cols
            * (
                self.COLUMN_DRIVER_F2
                + cell.max_vds_multiple * self.PER_RAIL_F2
            )
            * f2
        )
        import math

        bits = max(1, math.ceil(math.log2(max(self.rows, 2))))
        decoder = bits * self.DECODER_PER_BIT_F2 * f2
        return AreaBreakdown(
            core=core,
            row_interface=row_iface,
            lta=lta,
            drivers=drivers,
            decoder=decoder,
        )
