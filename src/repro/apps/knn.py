"""k-nearest-neighbor classification on FeReX.

The paper validates FeReX "in the context of KNN" (Sec. IV-A, Fig. 7):
reference vectors are stored row-wise in the AM, the query drives the
search lines, and the LTA returns the stored row with the smallest
configured distance.  ``k > 1`` uses the iterative winner-masking flow
(:meth:`repro.arch.crossbar.FeReXArray.search_k`).

Two backends share one interface:

* ``software`` — exact integer distance computation (the baseline the
  paper compares hardware accuracy against);
* ``ferex`` — full array simulation through :class:`repro.core.FeReX`,
  including device variation when a seed is supplied.  Reference sets
  larger than ``max_rows`` are split across array banks; bank winners are
  merged by their measured analog distances, exactly how a multi-bank
  FeReX deployment would compose.

Both backends are batched: :meth:`KNNClassifier.predict` classifies the
whole query set with one ``pairwise`` call (software) or one per-bank
:meth:`repro.core.FeReX.search_k_batch` call plus a vectorised bank
merge (ferex), rather than looping queries through Python.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.distance import get_metric
from ..core.engine import FeReX


@dataclass
class KNNPrediction:
    """Outcome of classifying one query."""

    label: int
    neighbor_indices: Tuple[int, ...]
    neighbor_distances: Tuple[float, ...]


class KNNClassifier:
    """KNN over b-bit quantised feature vectors.

    Parameters
    ----------
    metric / bits:
        Distance configuration passed to the engine.
    k:
        Neighbors per vote.
    backend:
        "software" or "ferex".
    max_rows:
        Array bank height for the ferex backend.
    seed:
        Variation seed for the ferex backend (None = ideal devices).
    """

    def __init__(
        self,
        metric: str = "hamming",
        bits: int = 2,
        k: int = 1,
        backend: str = "software",
        max_rows: int = 1024,
        encoder: str = "auto",
        seed: Optional[int] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if backend not in ("software", "ferex"):
            raise ValueError(f"unknown backend {backend!r}")
        self.metric_name = metric
        self.metric = get_metric(metric)
        self.bits = bits
        self.k = k
        self.backend = backend
        self.max_rows = max_rows
        self.encoder = encoder
        self.seed = seed
        self._train_x: Optional[np.ndarray] = None
        self._train_y: Optional[np.ndarray] = None
        self._banks: List[FeReX] = []
        self._bank_offsets: List[int] = []

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Store the reference set (and program the arrays for ferex)."""
        x = np.asarray(x, dtype=int)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise ValueError("x must be (n, dims)")
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(x) == 0:
            raise ValueError("empty reference set")
        self._train_x = x
        self._train_y = y
        self._banks = []
        self._bank_offsets = []
        if self.backend == "ferex":
            dims = x.shape[1]
            for start in range(0, len(x), self.max_rows):
                chunk = x[start : start + self.max_rows]
                seed = (
                    None
                    if self.seed is None
                    else self.seed + start // self.max_rows
                )
                engine = FeReX(
                    metric=self.metric_name,
                    bits=self.bits,
                    dims=dims,
                    encoder=self.encoder,
                    seed=seed,
                )
                engine.program(chunk)
                self._banks.append(engine)
                self._bank_offsets.append(start)
        return self

    @property
    def n_banks(self) -> int:
        return len(self._banks)

    # ------------------------------------------------------------------
    def _neighbors_software_batch(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(n, k') neighbor indices and distances, one pairwise call."""
        distances = self.metric.pairwise(
            queries, self._train_x, self.bits
        ).astype(float)
        k_eff = min(self.k, distances.shape[1])
        order = np.argsort(distances, axis=1, kind="stable")[:, :k_eff]
        return order, np.take_along_axis(distances, order, axis=1)

    def _neighbors_ferex_batch(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-bank batched ``search_k`` + vectorised bank merge.

        Each bank contributes its ``min(k, rows)`` nearest rows per
        query; candidates merge on (analog distance, global row index) —
        exactly how a multi-bank FeReX deployment composes its LTA
        outputs, and the same ordering the serial per-query merge used.
        """
        bank_idx: List[np.ndarray] = []
        bank_dist: List[np.ndarray] = []
        for engine, offset in zip(self._banks, self._bank_offsets):
            k_eff = min(self.k, engine.array.rows)
            result = engine.search_k_batch(queries, k_eff)
            bank_idx.append(offset + result.winners)
            bank_dist.append(
                np.take_along_axis(result.row_units, result.winners, axis=1)
            )
        idx = np.concatenate(bank_idx, axis=1)
        dist = np.concatenate(bank_dist, axis=1)
        # Per-query merge sorted by (distance, global index) — lexsort's
        # last key is primary.
        order = np.lexsort((idx, dist))[:, : self.k]
        return (
            np.take_along_axis(idx, order, axis=1),
            np.take_along_axis(dist, order, axis=1),
        )

    def _neighbors_batch(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.backend == "software":
            return self._neighbors_software_batch(queries)
        return self._neighbors_ferex_batch(queries)

    def _vote(self, idx: np.ndarray) -> int:
        votes = Counter(int(self._train_y[i]) for i in idx)
        # Majority vote; ties break toward the closest neighbor's label.
        best_count = max(votes.values())
        tied = {label for label, c in votes.items() if c == best_count}
        return next(
            int(self._train_y[i]) for i in idx
            if int(self._train_y[i]) in tied
        )

    def predict_one(self, query: Sequence[int]) -> KNNPrediction:
        """Classify a single query vector (one-row batch)."""
        if self._train_x is None or self._train_y is None:
            raise RuntimeError("fit() must be called before predict")
        query = np.asarray(query, dtype=int)
        idx, dist = self._neighbors_batch(query.reshape(1, -1))
        return KNNPrediction(
            label=self._vote(idx[0]),
            neighbor_indices=tuple(int(i) for i in idx[0]),
            neighbor_distances=tuple(float(d) for d in dist[0]),
        )

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Classify a batch of query vectors.

        The whole batch flows through one ``pairwise`` call (software
        backend) or one per-bank :meth:`FeReX.search_k_batch` call plus
        a vectorised bank merge (ferex backend); only the majority vote
        loops per query.
        """
        if self._train_x is None or self._train_y is None:
            raise RuntimeError("fit() must be called before predict")
        queries = np.asarray(queries, dtype=int)
        if queries.ndim != 2:
            raise ValueError("queries must be (n, dims)")
        if len(queries) == 0:
            return np.empty(0, dtype=int)
        idx, _ = self._neighbors_batch(queries)
        return np.array([self._vote(row) for row in idx], dtype=int)

    def score(self, queries: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels, dtype=int)
        predictions = self.predict(queries)
        return float(np.mean(predictions == labels))
