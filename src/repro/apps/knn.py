"""k-nearest-neighbor classification on FeReX.

The paper validates FeReX "in the context of KNN" (Sec. IV-A, Fig. 7):
reference vectors are stored row-wise in the AM, the query drives the
search lines, and the LTA returns the stored row with the smallest
configured distance.

All neighbor search is delegated to a :class:`repro.index.FerexIndex`,
the shared sharded-search layer:

* ``software`` — the index's exact backend (the baseline the paper
  compares hardware accuracy against);
* ``ferex`` — the index's sharded-bank array simulation, including
  device variation when a seed is supplied.  Reference sets larger than
  ``max_rows`` split across banks inside the index, which also performs
  the vectorised (analog distance, global row) merge.

Both paths are batched end to end: :meth:`KNNClassifier.predict`
classifies the whole query set with one :meth:`FerexIndex.search` call
and one `np.bincount`-based vectorised majority vote — no per-query
Python loops anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.distance import get_metric
from ..index import FerexIndex


@dataclass
class KNNPrediction:
    """Outcome of classifying one query."""

    label: int
    neighbor_indices: Tuple[int, ...]
    neighbor_distances: Tuple[float, ...]


class KNNClassifier:
    """KNN over b-bit quantised feature vectors.

    Parameters
    ----------
    metric / bits:
        Distance configuration passed to the index.
    k:
        Neighbors per vote.
    backend:
        "software" or "ferex".
    max_rows:
        Array bank height for the ferex backend.
    seed:
        Variation seed for the ferex backend (None = ideal devices).
    """

    def __init__(
        self,
        metric: str = "hamming",
        bits: int = 2,
        k: int = 1,
        backend: str = "software",
        max_rows: int = 1024,
        encoder: str = "auto",
        seed: Optional[int] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if backend not in ("software", "ferex"):
            raise ValueError(f"unknown backend {backend!r}")
        self.metric_name = metric
        self.metric = get_metric(metric)
        self.bits = bits
        self.k = k
        self.backend = backend
        self.max_rows = max_rows
        self.encoder = encoder
        self.seed = seed
        self._index: Optional[FerexIndex] = None
        self._label_values: Optional[np.ndarray] = None
        self._label_codes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Store the reference set in a fresh index (programming the
        array banks for the ferex backend)."""
        x = np.asarray(x, dtype=int)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise ValueError("x must be (n, dims)")
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(x) == 0:
            raise ValueError("empty reference set")
        # Dense label codes for the bincount vote (labels may be any
        # integers; codes are their sorted-unique positions).
        self._label_values, self._label_codes = np.unique(
            y, return_inverse=True
        )
        self._index = FerexIndex(
            dims=x.shape[1],
            metric=self.metric_name,
            bits=self.bits,
            backend="ferex" if self.backend == "ferex" else "exact",
            bank_rows=self.max_rows,
            encoder=self.encoder,
            seed=self.seed,
        )
        self._index.add(x)  # auto ids == row positions == train indices
        return self

    @property
    def index(self) -> Optional[FerexIndex]:
        """The underlying vector index (None before fit)."""
        return self._index

    @property
    def n_banks(self) -> int:
        return self._index.n_banks if self._index is not None else 0

    # ------------------------------------------------------------------
    def _neighbors_batch(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(n, k') neighbor train-indices and distances via the index.

        ``k`` is clamped to the reference-set size: the index pads
        columns beyond the live row count with ``(-1, inf)`` sentinels,
        which must never reach the label vote.
        """
        k = min(self.k, len(self._index))
        outcome = self._index.search(queries, k)
        return outcome.ids, outcome.distances

    def _vote_batch(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised majority vote over (n, k) neighbor indices.

        One flat ``np.bincount`` per batch; ties in the count break
        toward the label of the closest tied neighbor (column order is
        nearest-first).
        """
        codes = self._label_codes[idx]  # (n, k) dense label codes
        n, k = codes.shape
        n_labels = len(self._label_values)
        counts = np.bincount(
            (codes + np.arange(n)[:, None] * n_labels).ravel(),
            minlength=n * n_labels,
        ).reshape(n, n_labels)
        tied = counts == counts.max(axis=1, keepdims=True)
        # First (closest) neighbor whose label is in the tied set.
        first = np.take_along_axis(tied, codes, axis=1).argmax(axis=1)
        return self._label_values[codes[np.arange(n), first]]

    def predict_one(self, query: Sequence[int]) -> KNNPrediction:
        """Classify a single query vector (one-row batch)."""
        if self._index is None:
            raise RuntimeError("fit() must be called before predict")
        query = np.asarray(query, dtype=int)
        idx, dist = self._neighbors_batch(query.reshape(1, -1))
        return KNNPrediction(
            label=int(self._vote_batch(idx)[0]),
            neighbor_indices=tuple(int(i) for i in idx[0]),
            neighbor_distances=tuple(float(d) for d in dist[0]),
        )

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Classify a batch of query vectors.

        The whole batch flows through one :meth:`FerexIndex.search`
        (one ``pairwise`` call for software, per-bank batched
        ``search_k`` plus the index's vectorised merge for ferex) and
        one vectorised majority vote.
        """
        if self._index is None:
            raise RuntimeError("fit() must be called before predict")
        queries = np.asarray(queries, dtype=int)
        if queries.ndim != 2:
            raise ValueError("queries must be (n, dims)")
        if len(queries) == 0:
            return np.empty(0, dtype=int)
        idx, _ = self._neighbors_batch(queries)
        return self._vote_batch(idx).astype(int)

    def score(self, queries: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels, dtype=int)
        predictions = self.predict(queries)
        return float(np.mean(predictions == labels))
