"""Quantisation of hypervectors to FeReX's b-bit storage alphabet.

The AM stores b-bit integers; hyperdimensional class prototypes are
real-valued accumulators, so they (and the query vectors) must be
quantised.  Multi-bit quantisation is what lets FeReX's Manhattan and
Euclidean modes outperform plain Hamming on some datasets — the effect
Fig. 8(a) reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SymmetricQuantizer:
    """Uniform quantiser over a +-``clip_sigma`` standard-deviation window.

    Fitting records the center/scale of the reference distribution; the
    same transform is then applied to queries so that stored and searched
    vectors live on the same integer grid.
    """

    bits: int
    clip_sigma: float = 2.0
    center_: Optional[np.ndarray] = None
    scale_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "SymmetricQuantizer":
        """Record quantisation window statistics (per dimension)."""
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("expected (n, dims) values")
        self.center_ = values.mean(axis=0)
        std = values.std(axis=0)
        self.scale_ = np.where(std < 1e-12, 1.0, std) * self.clip_sigma
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Quantise to integers in ``[0, 2**bits)``."""
        if self.center_ is None or self.scale_ is None:
            raise RuntimeError("fit() must be called before transform()")
        values = np.asarray(values, dtype=float)
        levels = (1 << self.bits) - 1
        normalised = (values - self.center_) / self.scale_  # ~[-1, 1]
        grid = (normalised + 1.0) * 0.5 * levels
        return np.clip(np.rint(grid), 0, levels).astype(int)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


def binarize(values: np.ndarray) -> np.ndarray:
    """Sign binarisation to {0, 1} (the classic Hamming-HDC encoding)."""
    values = np.asarray(values, dtype=float)
    return (values > 0).astype(int)
