"""Hyperdimensional computing on FeReX: encoder, quantisation, classifier."""

from .encoder import RandomProjectionEncoder
from .model import HDCClassifier, HDCTrainStats
from .quantize import SymmetricQuantizer, binarize

__all__ = [
    "HDCClassifier",
    "HDCTrainStats",
    "RandomProjectionEncoder",
    "SymmetricQuantizer",
    "binarize",
]
