"""HDC classifier: single-pass + iterative training, AM inference.

Paper Sec. IV-B, the three-step flow:

1. **project** — features to hypervectors (:mod:`.encoder`);
2. **train** — "single-pass training is performed, where the encoded
   high-dimensional vectors of a certain class are aggregated. Iterative
   training [is] conducted for higher algorithmic accuracy" — class
   accumulators plus perceptron-style refinement;
3. **infer** — "the predicted class vector that has closest distance to
   the query vector is output using the configured FeReX distance
   function" — the class prototypes are quantised and stored in the AM,
   one row per class, and each query is one LTA search.

The inference backend is switchable between exact software distances and
the full FeReX array simulation, which is how Fig. 8(a) compares
Hamming / Manhattan / Euclidean accuracy per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ...core.distance import get_metric
from ...core.engine import FeReX
from ...index import FerexIndex
from .encoder import RandomProjectionEncoder
from .quantize import SymmetricQuantizer


@dataclass
class HDCTrainStats:
    """Per-epoch training trace."""

    epoch_errors: List[int] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.epoch_errors)


class HDCClassifier:
    """Hyperdimensional classifier with a FeReX associative-memory head.

    Parameters
    ----------
    n_features / dim:
        Encoder geometry.
    metric / bits:
        AM search configuration (the *reconfigurable* part).
    epochs:
        Iterative-refinement passes after single-pass bundling (0 keeps
        the pure single-pass model).
    lr:
        Refinement step size on the accumulators.
    backend:
        "software" (exact distances) or "ferex" (array simulation).
    seed:
        Seeds the encoder projection; ``seed + 1`` seeds array variation
        when ``variation=True``.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        dim: int = 2048,
        metric: str = "hamming",
        bits: int = 2,
        epochs: int = 3,
        lr: float = 1.0,
        backend: str = "software",
        encoder_mode: str = "auto",
        variation: bool = False,
        seed: int = 7,
    ):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        if backend not in ("software", "ferex"):
            raise ValueError(f"unknown backend {backend!r}")
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        self.n_classes = n_classes
        self.metric_name = metric
        self.metric = get_metric(metric)
        self.bits = bits
        self.epochs = epochs
        self.lr = lr
        self.backend = backend
        self.encoder_mode = encoder_mode
        self.variation = variation
        self.seed = seed
        self.encoder = RandomProjectionEncoder(
            n_features=n_features, dim=dim, seed=seed
        )
        self.quantizer = SymmetricQuantizer(bits=bits)
        self._accumulators: Optional[np.ndarray] = None
        self._prototypes: Optional[np.ndarray] = None
        self._index: Optional[FerexIndex] = None
        #: Mean query-hypervector norm, set by fit(); prototypes are
        #: rescaled to it so stored and searched vectors share one
        #: integer grid.
        self._query_norm: Optional[float] = None
        self.train_stats = HDCTrainStats()

    @property
    def dim(self) -> int:
        return self.encoder.dim

    @property
    def index(self) -> Optional[FerexIndex]:
        """The associative-memory index (ferex backend only; built
        lazily at fit/predict time)."""
        return self._index

    @property
    def engine(self) -> Optional[FeReX]:
        """The underlying FeReX engine of the AM bank (ferex backend
        only; the class prototypes always fit one bank)."""
        if self._index is None:
            return None
        engines = self._index.backend.engines
        return engines[0] if engines else None

    @property
    def prototypes(self) -> np.ndarray:
        """Quantised class hypervectors (what the AM stores)."""
        if self._prototypes is None:
            raise RuntimeError("fit() must be called first")
        return self._prototypes

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "HDCClassifier":
        y = np.asarray(y, dtype=int)
        h = self.encoder.encode(x)
        if y.min(initial=0) < 0 or y.max(initial=0) >= self.n_classes:
            raise ValueError("labels outside [0, n_classes)")

        # Single-pass bundling.
        acc = np.zeros((self.n_classes, self.dim))
        for c in range(self.n_classes):
            members = h[y == c]
            if len(members):
                acc[c] = members.sum(axis=0)

        # Iterative refinement on quantised-model mistakes.
        self.train_stats = HDCTrainStats()
        self.quantizer.fit(h)
        # Class accumulators grow with class size, so prototypes are
        # rescaled to the mean query norm before quantisation.
        self._query_norm = float(
            np.linalg.norm(h, axis=1).mean()
        )
        for _ in range(self.epochs):
            prototypes = self._quantize_prototypes(acc)
            queries = self.quantizer.transform(h)
            distances = self.metric.pairwise(
                queries, prototypes, self.bits
            )
            predicted = np.argmin(distances, axis=1)
            wrong = np.flatnonzero(predicted != y)
            self.train_stats.epoch_errors.append(int(len(wrong)))
            if len(wrong) == 0:
                break
            for i in wrong:
                acc[y[i]] += self.lr * h[i]
                acc[predicted[i]] -= self.lr * h[i]

        self._accumulators = acc
        self._prototypes = self._quantize_prototypes(acc)
        self._index = None
        if self.backend == "ferex":
            self._index = self._build_index()
        return self

    def _quantize_prototypes(self, acc: np.ndarray) -> np.ndarray:
        """Quantise accumulators onto the same grid as queries.

        Accumulator magnitudes scale with class counts, so each row is
        rescaled to the mean query norm and then passed through the
        *query* quantiser — stored and searched vectors must live on an
        identical integer grid for absolute-agreement metrics (Hamming,
        Manhattan) to work.
        """
        if self._query_norm is None:
            raise RuntimeError(
                "fit() must be called before prototypes can be quantised"
            )
        norms = np.linalg.norm(acc, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        scaled = acc / norms * self._query_norm
        return self.quantizer.transform(scaled)

    def _build_index(self) -> FerexIndex:
        """One AM bank holding the class prototypes, one row per class.

        ``bank_rows = n_classes`` so the prototypes occupy exactly one
        physical array; prototype id == class label by construction.
        """
        index = FerexIndex(
            dims=self.dim,
            metric=self.metric_name,
            bits=self.bits,
            backend="ferex",
            bank_rows=self.n_classes,
            encoder=self.encoder_mode,
            seed=(self.seed + 1) if self.variation else None,
        )
        index.add(self.prototypes)
        return index

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def encode_queries(self, x: np.ndarray) -> np.ndarray:
        """Feature batch to quantised query hypervectors."""
        h = self.encoder.encode(x)
        return self.quantizer.transform(h)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class per sample.

        The ferex backend pushes the whole query batch through one
        :meth:`repro.index.FerexIndex.search` call — one blocked array
        evaluation plus one vectorised LTA pass, bit-identical to
        per-query searches; the returned ids *are* the class labels.
        """
        queries = self.encode_queries(x)
        if self.backend == "software":
            distances = self.metric.pairwise(
                queries, self.prototypes, self.bits
            )
            return np.argmin(distances, axis=1).astype(int)
        if self._index is None:
            self._index = self._build_index()
        return self._index.search(queries, k=1).ids[:, 0].astype(int)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        y = np.asarray(y, dtype=int)
        return float(np.mean(self.predict(x) == y))
