"""Hyperdimensional encoding: random projection to high dimensions.

Paper Sec. IV-B: "In HDC, low dimensional features are initially projected
to high dimensional representations randomly, enabling holographicness
across the high dimensional feature vectors."

We implement the standard random-projection (record-based) encoder used by
OnlineHD [Hernandez-Cano, DATE 2021]: a fixed random bipolar matrix
projects the feature vector; an optional nonlinearity decorrelates the
components; the result is quantised by the caller
(:mod:`repro.apps.hdc.quantize`).
"""

from __future__ import annotations


import numpy as np


class RandomProjectionEncoder:
    """Fixed random projection ``R^n -> R^D`` with optional cosine
    nonlinearity.

    Parameters
    ----------
    n_features:
        Input feature count.
    dim:
        Hypervector dimensionality D (thousands in practice).
    nonlinearity:
        "cos" applies ``cos(h + phase)`` — the OnlineHD kernel trick,
        which makes the encoding behave like an RBF feature map;
        "none" keeps the raw projection.
    seed:
        Generator seed; the projection is part of the model and must be
        identical at train and inference time.
    """

    def __init__(
        self,
        n_features: int,
        dim: int = 2048,
        nonlinearity: str = "cos",
        seed: int = 7,
    ):
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if nonlinearity not in ("cos", "none"):
            raise ValueError(f"unknown nonlinearity {nonlinearity!r}")
        self.n_features = n_features
        self.dim = dim
        self.nonlinearity = nonlinearity
        rng = np.random.default_rng(seed)
        self._projection = rng.normal(
            0.0, 1.0 / np.sqrt(n_features), size=(n_features, dim)
        )
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=dim)

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Project a batch (n, n_features) to hyperspace (n, dim)."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        h = x @ self._projection
        if self.nonlinearity == "cos":
            h = np.cos(h + self._phase)
        return h
