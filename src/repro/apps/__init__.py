"""Application layer: KNN and HDC classifiers plus dataset generators."""

from .datasets import (
    Dataset,
    TABLE_III,
    make_dataset,
    make_isolet,
    make_mnist,
    make_ucihar,
    quantize_features,
)
from .hdc import HDCClassifier, RandomProjectionEncoder, SymmetricQuantizer
from .knn import KNNClassifier, KNNPrediction

__all__ = [
    "Dataset",
    "HDCClassifier",
    "KNNClassifier",
    "KNNPrediction",
    "RandomProjectionEncoder",
    "SymmetricQuantizer",
    "TABLE_III",
    "make_dataset",
    "make_isolet",
    "make_mnist",
    "make_ucihar",
    "quantize_features",
]
