"""Synthetic stand-ins for the paper's benchmark datasets (Table III).

The paper benchmarks on ISOLET (voice, 617 features, 26 classes), UCIHAR
(activity monitoring, 561 features, 12 classes) and MNIST (handwriting,
784 features, 10 classes).  This environment has no network access, so we
generate seeded synthetic datasets with the same feature dimensionality,
class count and split sizes:

* **MNIST stand-in** — a procedural stroke renderer draws each digit from
  a 16-segment glyph table onto a 28 x 28 canvas, then applies random
  translation, per-stroke jitter, thickness variation and pixel noise.
  Nearest-neighbor structure (the property KNN/HDC benchmarking needs)
  emerges from glyph geometry exactly as it does for handwriting.
* **ISOLET / UCIHAR stand-ins** — Gaussian class clusters in a shared
  random low-rank basis: ``x = W z_c + noise`` with per-class latent
  means.  Class separability is controlled so that classifier accuracies
  land in the realistic 80-95 % band rather than at a degenerate 100 %.
  The UCIHAR generator additionally smooths features along the feature
  axis, mimicking windowed time-series statistics.

All generators are deterministic given a seed, and every array is float64
in [0, 1].  Quantisation to the b-bit alphabets FeReX stores is provided
by :func:`quantize_features`.

See DESIGN.md section 4 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """A classification dataset split into train and test parts."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    description: str = ""

    @property
    def n_features(self) -> int:
        return self.train_x.shape[1]

    @property
    def n_classes(self) -> int:
        return int(
            max(self.train_y.max(initial=0), self.test_y.max(initial=0))
        ) + 1

    @property
    def train_size(self) -> int:
        return self.train_x.shape[0]

    @property
    def test_size(self) -> int:
        return self.test_x.shape[0]

    def subsample(
        self, train: int, test: int, seed: int = 0
    ) -> "Dataset":
        """A smaller stratified-ish random subset (for quick benches)."""
        rng = np.random.default_rng(seed)
        tr = min(train, self.train_size)
        te = min(test, self.test_size)
        tr_idx = rng.choice(self.train_size, size=tr, replace=False)
        te_idx = rng.choice(self.test_size, size=te, replace=False)
        return Dataset(
            name=self.name,
            train_x=self.train_x[tr_idx],
            train_y=self.train_y[tr_idx],
            test_x=self.test_x[te_idx],
            test_y=self.test_y[te_idx],
            description=self.description,
        )


def quantize_features(x: np.ndarray, bits: int) -> np.ndarray:
    """Uniformly quantise [0, 1] features to b-bit integer levels."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    x = np.asarray(x, dtype=float)
    levels = (1 << bits) - 1
    q = np.rint(np.clip(x, 0.0, 1.0) * levels).astype(int)
    return q


# ----------------------------------------------------------------------
# Gaussian-cluster generators (ISOLET / UCIHAR stand-ins)
# ----------------------------------------------------------------------
def _cluster_dataset(
    name: str,
    n_features: int,
    n_classes: int,
    train_size: int,
    test_size: int,
    seed: int,
    latent_dim: int,
    class_spread: float,
    noise: float,
    smooth: int = 0,
    description: str = "",
) -> Dataset:
    rng = np.random.default_rng(seed)
    basis = rng.normal(0.0, 1.0, size=(latent_dim, n_features))
    basis /= np.linalg.norm(basis, axis=1, keepdims=True)
    class_means = rng.normal(
        0.0, class_spread, size=(n_classes, latent_dim)
    )

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, n_classes, size=n)
        z = class_means[y] + rng.normal(
            0.0, 1.0, size=(n, latent_dim)
        )
        x = z @ basis + rng.normal(0.0, noise, size=(n, n_features))
        if smooth > 1:
            kernel = np.ones(smooth) / smooth
            x = np.apply_along_axis(
                lambda row: np.convolve(row, kernel, mode="same"), 1, x
            )
        return x, y

    train_x, train_y = sample(train_size)
    test_x, test_y = sample(test_size)

    # Normalise to [0, 1] with train statistics (applied to both splits).
    lo = train_x.min(axis=0, keepdims=True)
    hi = train_x.max(axis=0, keepdims=True)
    span = np.where(hi - lo < 1e-12, 1.0, hi - lo)
    train_x = np.clip((train_x - lo) / span, 0.0, 1.0)
    test_x = np.clip((test_x - lo) / span, 0.0, 1.0)

    return Dataset(
        name=name,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        description=description,
    )


def make_isolet(
    train_size: int = 6238,
    test_size: int = 1559,
    seed: int = 101,
) -> Dataset:
    """ISOLET stand-in: 617 features, 26 classes (spoken letters)."""
    return _cluster_dataset(
        name="ISOLET",
        n_features=617,
        n_classes=26,
        train_size=train_size,
        test_size=test_size,
        seed=seed,
        latent_dim=48,
        class_spread=1.4,
        noise=1.2,
        description="Voice Recognition (synthetic stand-in)",
    )


def make_ucihar(
    train_size: int = 6213,
    test_size: int = 1554,
    seed: int = 202,
) -> Dataset:
    """UCIHAR stand-in: 561 features, 12 classes (physical activity)."""
    return _cluster_dataset(
        name="UCIHAR",
        n_features=561,
        n_classes=12,
        train_size=train_size,
        test_size=test_size,
        seed=seed,
        latent_dim=32,
        class_spread=1.9,
        noise=1.0,
        smooth=5,
        description="Physical Activity Monitoring (synthetic stand-in)",
    )


# ----------------------------------------------------------------------
# Procedural digit renderer (MNIST stand-in)
# ----------------------------------------------------------------------
#: Stroke segments per digit on a 4 x 6 grid (x0, y0, x1, y1), loosely
#: following a 16-segment display so that every digit pair differs in
#: several strokes (giving graded, handwriting-like pairwise distances).
_DIGIT_STROKES: Dict[int, Tuple[Tuple[float, float, float, float], ...]] = {
    0: ((0, 0, 3, 0), (3, 0, 3, 5), (3, 5, 0, 5), (0, 5, 0, 0)),
    1: ((1.5, 0, 1.5, 5), (0.8, 1, 1.5, 0)),
    2: ((0, 0, 3, 0), (3, 0, 3, 2.5), (3, 2.5, 0, 2.5), (0, 2.5, 0, 5), (0, 5, 3, 5)),
    3: ((0, 0, 3, 0), (3, 0, 3, 5), (0, 2.5, 3, 2.5), (0, 5, 3, 5)),
    4: ((0, 0, 0, 2.5), (0, 2.5, 3, 2.5), (3, 0, 3, 5)),
    5: ((3, 0, 0, 0), (0, 0, 0, 2.5), (0, 2.5, 3, 2.5), (3, 2.5, 3, 5), (3, 5, 0, 5)),
    6: ((3, 0, 0, 0), (0, 0, 0, 5), (0, 5, 3, 5), (3, 5, 3, 2.5), (3, 2.5, 0, 2.5)),
    7: ((0, 0, 3, 0), (3, 0, 1, 5)),
    8: ((0, 0, 3, 0), (3, 0, 3, 5), (3, 5, 0, 5), (0, 5, 0, 0), (0, 2.5, 3, 2.5)),
    9: ((3, 2.5, 0, 2.5), (0, 2.5, 0, 0), (0, 0, 3, 0), (3, 0, 3, 5), (3, 5, 0, 5)),
}

_CANVAS = 28
_MARGIN = 5.0


def _render_digit(
    digit: int, rng: np.random.Generator
) -> np.ndarray:
    """Render one jittered digit glyph to a 28 x 28 [0, 1] image."""
    strokes = _DIGIT_STROKES[digit]
    img = np.zeros((_CANVAS, _CANVAS))
    scale_x = (_CANVAS - 2 * _MARGIN) / 3.0 * rng.uniform(0.9, 1.1)
    scale_y = (_CANVAS - 2 * _MARGIN) / 5.0 * rng.uniform(0.9, 1.1)
    offset = rng.uniform(-1.5, 1.5, size=2) + _MARGIN
    thickness = rng.uniform(0.9, 1.4)

    yy, xx = np.mgrid[0:_CANVAS, 0:_CANVAS]
    for x0, y0, x1, y1 in strokes:
        jitter = rng.normal(0.0, 0.25, size=4)
        px0 = x0 * scale_x + offset[0] + jitter[0]
        py0 = y0 * scale_y + offset[1] + jitter[1]
        px1 = x1 * scale_x + offset[0] + jitter[2]
        py1 = y1 * scale_y + offset[1] + jitter[3]
        # Distance from every pixel to the stroke segment.
        dx, dy = px1 - px0, py1 - py0
        length_sq = dx * dx + dy * dy
        if length_sq < 1e-9:
            t = np.zeros_like(xx, dtype=float)
        else:
            t = ((xx - px0) * dx + (yy - py0) * dy) / length_sq
            t = np.clip(t, 0.0, 1.0)
        dist = np.hypot(xx - (px0 + t * dx), yy - (py0 + t * dy))
        img = np.maximum(img, np.exp(-((dist / thickness) ** 2)))

    img += rng.normal(0.0, 0.04, size=img.shape)
    return np.clip(img, 0.0, 1.0)


def make_mnist(
    train_size: int = 60000,
    test_size: int = 10000,
    seed: int = 303,
) -> Dataset:
    """MNIST stand-in: procedurally rendered 28 x 28 digits, 10 classes.

    Rendering 70k images takes a couple of minutes; benches use
    ``Dataset.subsample`` or smaller sizes.
    """
    rng = np.random.default_rng(seed)

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, 10, size=n)
        x = np.empty((n, _CANVAS * _CANVAS))
        for i, digit in enumerate(y):
            x[i] = _render_digit(int(digit), rng).ravel()
        return x, y

    train_x, train_y = sample(train_size)
    test_x, test_y = sample(test_size)
    return Dataset(
        name="MNIST",
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        description="Handwritten Recognition (synthetic stand-in)",
    )


#: Table III of the paper: (features, classes, train, test, description).
TABLE_III = {
    "ISOLET": (617, 26, 6238, 1559, "Voice Recognition"),
    "UCIHAR": (561, 12, 6213, 1554, "Physical Activity Monitoring"),
    "MNIST": (784, 10, 60000, 10000, "Handwritten Recognition"),
}

_MAKERS = {
    "ISOLET": make_isolet,
    "UCIHAR": make_ucihar,
    "MNIST": make_mnist,
}


def make_dataset(
    name: str,
    train_size: Optional[int] = None,
    test_size: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dataset:
    """Build one of the Table III stand-ins by name."""
    key = name.upper()
    if key not in _MAKERS:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(_MAKERS)}"
        )
    kwargs = {}
    if train_size is not None:
        kwargs["train_size"] = train_size
    if test_size is not None:
        kwargs["test_size"] = test_size
    if seed is not None:
        kwargs["seed"] = seed
    return _MAKERS[key](**kwargs)
