"""`FerexServer`: the async serving facade over FeReX index replicas.

The request path composes the three serving primitives::

                      submit                   flush
    search(query, k) ───────> RequestCoalescer ─────> micro-batch
          │ hit?                                        │
          ▼                                             ▼
      QueryCache <───── populate rows ────── ReplicaRouter.read()
    (query, k, write-generation)                        │
                                                        ▼
                                            FerexIndex.search (batched)

* a request first probes the LRU :class:`~repro.serve.cache.QueryCache`
  (keyed on quantised query bytes, ``k`` and the index
  write-generation);
* on a miss it parks in the :class:`~repro.serve.coalescer.
  RequestCoalescer`, which flushes micro-batches through one replica
  picked by the :class:`~repro.serve.router.ReplicaRouter`;
* the batched index search runs on a worker thread
  (``run_in_executor``), so the event loop keeps accepting and
  coalescing requests while the array simulation crunches;
* writes (``add``/``remove``/``compact``) go through the router's
  single-writer path — applied to every replica in order, parity
  checked — and clear the cache.

Every answer is bit-identical to calling ``FerexIndex.search``
directly: batching rides the index's bit-identical batch path, cached
rows are frozen copies of served results, and replicas are kept
bit-identical by construction.  ``tests/serve/`` asserts exactly this.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..index import FerexIndex, SearchOutcome
from .cache import QueryCache
from .coalescer import RequestCoalescer
from .router import ReplicaRouter
from .stats import ServerStats


class FerexServer:
    """Asyncio front-end: request coalescing + query cache + replicas.

    Parameters
    ----------
    replicas:
        One or more bit-identical :class:`FerexIndex` instances (same
        configuration, same mutation history — verified at
        construction), or a single index for an unreplicated server.
    max_batch_size / max_wait_ms:
        Coalescing knobs: flush a micro-batch at this size, or this
        long after its oldest request, whichever comes first.
    cache_size:
        LRU query-cache capacity; ``0`` disables caching.
    policy:
        Replica routing policy: ``"least_loaded"`` (default) or
        ``"round_robin"``.
    """

    def __init__(
        self,
        replicas: Union[FerexIndex, Sequence[FerexIndex]],
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        policy: str = "least_loaded",
    ):
        if isinstance(replicas, FerexIndex):
            replicas = [replicas]
        self._router = ReplicaRouter(replicas, policy=policy)
        self.stats = ServerStats()
        self._cache = QueryCache(cache_size)
        self._coalescer = RequestCoalescer(
            self._dispatch,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            on_batch=self.stats.record_batch,
        )
        self._closed = False

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[], FerexIndex],
        n_replicas: int = 1,
        **kwargs,
    ) -> "FerexServer":
        """Build a server over ``n_replicas`` indexes from a factory.

        The factory must be deterministic (same configuration and seed
        each call) — the parity check rejects replica sets that are not
        bit-identical.
        """
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        return cls([factory() for _ in range(n_replicas)], **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def router(self) -> ReplicaRouter:
        return self._router

    @property
    def cache(self) -> QueryCache:
        return self._cache

    @property
    def coalescer(self) -> RequestCoalescer:
        return self._coalescer

    @property
    def n_replicas(self) -> int:
        return self._router.n_replicas

    @property
    def write_generation(self) -> int:
        """The primary replica's mutation epoch (cache-key component)."""
        return self._router.primary.write_generation

    def __repr__(self) -> str:
        return (
            f"FerexServer(replicas={self.n_replicas}, "
            f"policy={self._router.policy!r}, "
            f"max_batch_size={self._coalescer.max_batch_size}, "
            f"cache={self._cache.capacity})"
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    async def search(self, query: np.ndarray, k: int = 1) -> SearchOutcome:
        """Serve one query: a :class:`SearchOutcome` of ``(k,)`` ids and
        distances, bit-identical to ``index.search(query[None], k)``.

        Concurrent callers coalesce into micro-batches automatically;
        repeated queries within one write-generation are answered from
        the LRU cache.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        query = np.asarray(query, dtype=int)
        # Full per-request validation happens *before* the query parks
        # in the coalescer: a batched dispatch validates whole batches,
        # and one malformed query must never fail the innocent callers
        # coalesced alongside it.
        primary = self._router.primary
        if query.shape != (primary.dims,):
            raise ValueError(
                f"search() serves one ({primary.dims},) query, got "
                f"{query.shape}"
            )
        hi = 1 << primary.bits
        if query.min() < 0 or query.max() >= hi:
            raise ValueError(f"query values outside [0, {hi})")
        if k < 1:
            raise ValueError("k must be >= 1")
        start = time.perf_counter()
        if self._cache.capacity and not self._router.poisoned:
            key = QueryCache.key(query, k, self.write_generation)
            entry = self._cache.get(key)
            if entry is not None:
                self.stats.record_request(
                    time.perf_counter() - start, cache_hit=True
                )
                # Writable copies, like the miss path hands out: a
                # caller mutating its result in place must behave the
                # same whether the cache was warm or not (and must
                # never corrupt the stored entry).
                return SearchOutcome(
                    ids=entry[0].copy(), distances=entry[1].copy()
                )
        try:
            ids, distances = await self._coalescer.submit(query, k)
        except Exception:
            self.stats.record_error()
            raise
        self.stats.record_request(time.perf_counter() - start)
        return SearchOutcome(ids=ids, distances=distances)

    async def search_many(
        self, queries: np.ndarray, k: int = 1
    ) -> SearchOutcome:
        """Serve a whole batch concurrently (one task per query, so the
        batch coalesces with any other traffic in flight); returns
        stacked ``(n, k)`` outcomes in query order."""
        if self._closed:
            raise RuntimeError("server is closed")
        queries = np.asarray(queries, dtype=int)
        if queries.ndim != 2:
            raise ValueError(
                f"search_many() takes (n, dims) queries, got "
                f"{queries.shape}"
            )
        if len(queries) == 0:
            # Even the empty batch goes through the router's read
            # admission: it must see poisoned-fleet errors and respect
            # writer exclusion like every other read.
            async with self._router.read() as replica:
                return replica.index.search(queries, k=k)
        results = await asyncio.gather(
            *(self.search(query, k) for query in queries)
        )
        return SearchOutcome(
            ids=np.stack([r.ids for r in results]),
            distances=np.stack([r.distances for r in results]),
        )

    async def _dispatch(self, queries: np.ndarray, k: int):
        """Coalescer flush target: route the micro-batch to a replica,
        run the batched index search off-loop, populate the cache."""
        async with self._router.read() as replica:
            # The generation is stable for the whole batch: writers are
            # excluded while any read holds the replica set.
            generation = replica.index.write_generation
            loop = asyncio.get_running_loop()
            outcome = await loop.run_in_executor(
                None, replica.index.search, queries, k
            )
            if self._cache.capacity:
                for row, query in enumerate(queries):
                    self._cache.put(
                        QueryCache.key(query, k, generation),
                        outcome.ids[row],
                        outcome.distances[row],
                    )
            return outcome.ids, outcome.distances

    # ------------------------------------------------------------------
    # Write path (single writer, every replica, cache invalidated)
    # ------------------------------------------------------------------
    async def add(
        self,
        vectors: np.ndarray,
        ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Store vectors on every replica; returns the assigned ids."""
        # Cleared in a finally: a failed write mutated nothing (index
        # mutations are atomic) so dropping the cache is merely
        # conservative — but it must drop even then, so a write that
        # *poisons* the fleet cannot leave stale hits behind.
        try:
            return await self._router.write(
                lambda index: index.add(vectors, ids=ids)
            )
        finally:
            self._cache.clear()

    async def remove(self, ids: Sequence[int]) -> int:
        """Tombstone ids on every replica."""
        try:
            return await self._router.write(
                lambda index: index.remove(ids)
            )
        finally:
            self._cache.clear()

    async def compact(self) -> None:
        """Physically re-program the live set on every replica."""
        try:
            await self._router.write(lambda index: index.compact())
        finally:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drain in-flight batches and refuse further requests."""
        if self._closed:
            return
        self._closed = True
        await self._coalescer.close()

    async def __aenter__(self) -> "FerexServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
