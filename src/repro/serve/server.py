"""`FerexServer`: the async serving facade over FeReX index replicas.

The request path composes the three serving primitives::

                      submit                   flush
    search(query, k) ───────> RequestCoalescer ─────> micro-batch
          │ hit?                                        │
          ▼                                             ▼
      QueryCache <───── populate rows ────── ReplicaRouter.read()
    (query, k, write-generation)                        │
                                                        ▼
                                            FerexIndex.search (batched)

* a request first probes the LRU :class:`~repro.serve.cache.QueryCache`
  (keyed on quantised query bytes, ``k`` and the index
  write-generation);
* on a miss it parks in the :class:`~repro.serve.coalescer.
  RequestCoalescer`, which flushes micro-batches through one replica
  picked by the :class:`~repro.serve.router.ReplicaRouter`;
* the batched index search runs on a worker thread
  (``run_in_executor``), so the event loop keeps accepting and
  coalescing requests while the array simulation crunches;
* writes (``add``/``remove``/``compact``) go through the router's
  single-writer path — applied to every replica in order, parity
  checked — and clear the cache.

Two scaling knobs extend the picture past one thread and one process:

* ``adaptive_wait=True`` lets the coalescer size its flush window from
  the observed arrival/service rates (confirmed-sparse singletons
  additionally dispatch inline, skipping the executor hop), so sparse
  traffic is served at near-direct-search latency while bursts still
  batch;
* ``pool=`` hands micro-batches to a :class:`~repro.serve.procpool.
  ProcReplicaPool` — N worker processes attached zero-copy to the
  primary's shared-memory segments — for true parallelism beyond the
  GIL; the write path then republishes the segments inside the same
  single-writer critical section, so a completed write is visible to
  every worker before any new read is admitted.

Every answer is bit-identical to calling ``FerexIndex.search``
directly: batching rides the index's bit-identical batch path, cached
rows are frozen copies of served results, and replicas (in-process or
pooled) are kept bit-identical by construction.  ``tests/serve/``
asserts exactly this.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..index import FerexIndex, SearchOutcome
from .cache import QueryCache, canonical_int_query
from .coalescer import RequestCoalescer
from .procpool import PoolBrokenError, ProcReplicaPool
from .router import ReplicaRouter
from .stats import ServerStats


class FerexServer:
    """Asyncio front-end: request coalescing + query cache + replicas.

    Parameters
    ----------
    replicas:
        One or more bit-identical :class:`FerexIndex` instances (same
        configuration, same mutation history — verified at
        construction), or a single index for an unreplicated server.
        Optional when ``pool`` is given (the pool's primary is used).
    max_batch_size / max_wait_ms:
        Coalescing knobs: flush a micro-batch at this size, or this
        long after its oldest request, whichever comes first.
    cache_size:
        Query-cache capacity; ``0`` disables caching.
    cache_policy:
        Query-cache admission/eviction policy: ``"lru"`` (default,
        admit every miss) or ``"tinylfu"`` (W-TinyLFU frequency
        gating — under skewed traffic one-hit wonders can no longer
        evict the hot head; see
        :mod:`repro.serve.admission_policy`).
    policy:
        Replica routing policy: ``"least_loaded"`` (default) or
        ``"round_robin"``.
    pool:
        Optional :class:`ProcReplicaPool` serving the read path from
        worker processes.  The pool's primary index must be the
        server's only replica (thread replicas and process replicas
        answer identically, but mixing the two routing layers would
        double-apply writes); the server republishes the pool on every
        write.  The caller owns the pool's lifecycle.
    adaptive_wait:
        Enable the coalescer's adaptive flush window (see
        :class:`RequestCoalescer`); ``max_wait_ms`` stays the ceiling.
    """

    def __init__(
        self,
        replicas: Union[FerexIndex, Sequence[FerexIndex], None] = None,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        cache_policy: str = "lru",
        policy: str = "least_loaded",
        pool: Optional[ProcReplicaPool] = None,
        adaptive_wait: bool = False,
    ):
        if replicas is None:
            if pool is None:
                raise ValueError("need replicas, a pool, or both")
            replicas = [pool.index]
        if isinstance(replicas, FerexIndex):
            replicas = [replicas]
        self._router = ReplicaRouter(replicas, policy=policy)
        self._pool = pool
        if pool is not None:
            if (
                self._router.n_replicas != 1
                or self._router.primary is not pool.index
            ):
                raise ValueError(
                    "a pooled server takes exactly one replica: the "
                    "pool's primary index (writes republish through it)"
                )
            if pool.generation != pool.index.write_generation:
                raise ValueError(
                    f"pool serves generation {pool.generation} but its "
                    f"primary is at {pool.index.write_generation}: the "
                    "index was mutated after the pool published; call "
                    "pool.republish() before putting a server in front"
                )
        self._adaptive = adaptive_wait
        self._republish_error: Optional[BaseException] = None
        self.stats = ServerStats()
        self._cache = QueryCache(cache_size, policy=cache_policy)
        # /metrics and bench artifacts read the cache (and its policy
        # state — occupancy, admission rejections, sketch resets)
        # through the stats snapshot.
        self.stats.cache_probe = self._cache.snapshot
        # The autoscaling signals: stats snapshots read the coalescer's
        # pending-queue depth (and its EWMAs / deadline drops) live
        # through these probes.
        self.stats.queue_depth_probe = lambda: self._coalescer.n_pending
        self.stats.register_gauge(
            "coalescer_ewma_service_s",
            lambda: self._coalescer.ewma_service_s,
        )
        self.stats.register_gauge(
            "coalescer_ewma_gap_s",
            lambda: self._coalescer.ewma_gap_s,
        )
        self.stats.register_gauge(
            "n_deadline_drops",
            lambda: self._coalescer.n_deadline_drops,
        )
        # Dispatch-transport counters: how many pooled micro-batches
        # rode the shared-memory slabs vs the pickle pipe (both read 0
        # on an unpooled server, so /metrics always carries the keys).
        self.stats.register_gauge(
            "n_slab_dispatches",
            lambda: (
                0 if self._pool is None else self._pool.n_slab_dispatches
            ),
        )
        self.stats.register_gauge(
            "n_pickle_fallbacks",
            lambda: (
                0 if self._pool is None else self._pool.n_pickle_fallbacks
            ),
        )
        self._coalescer = RequestCoalescer(
            self._dispatch,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            on_batch=self.stats.record_batch,
            adaptive_wait=adaptive_wait,
            # Only the coalescer's confirmed-sparse singleton fast path
            # may block the loop with a direct search; a pooled read is
            # pipe-bound and stays on the executor regardless.
            inline_dispatch=(
                self._dispatch_inline
                if adaptive_wait and pool is None
                else None
            ),
        )
        self._closed = False

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[], FerexIndex],
        n_replicas: int = 1,
        **kwargs,
    ) -> "FerexServer":
        """Build a server over ``n_replicas`` indexes from a factory.

        The factory must be deterministic (same configuration and seed
        each call) — the parity check rejects replica sets that are not
        bit-identical.
        """
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        return cls([factory() for _ in range(n_replicas)], **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def router(self) -> ReplicaRouter:
        return self._router

    @property
    def cache(self) -> QueryCache:
        return self._cache

    @property
    def coalescer(self) -> RequestCoalescer:
        return self._coalescer

    @property
    def pool(self) -> Optional[ProcReplicaPool]:
        return self._pool

    @property
    def n_replicas(self) -> int:
        return self._router.n_replicas

    @property
    def write_generation(self) -> int:
        """The primary replica's mutation epoch (cache-key component)."""
        return self._router.primary.write_generation

    def __repr__(self) -> str:
        return (
            f"FerexServer(replicas={self.n_replicas}, "
            f"policy={self._router.policy!r}, "
            f"max_batch_size={self._coalescer.max_batch_size}, "
            f"cache={self._cache.capacity}/"
            f"{self._cache.policy_name})"
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    async def search(
        self,
        query: np.ndarray,
        k: int = 1,
        deadline: Optional[float] = None,
    ) -> SearchOutcome:
        """Serve one query: a :class:`SearchOutcome` of ``(k,)`` ids and
        distances, bit-identical to ``index.search(query[None], k)``.

        Concurrent callers coalesce into micro-batches automatically;
        repeated queries within one write-generation are answered from
        the LRU cache.

        ``deadline`` is an absolute ``loop.time()`` instant propagated
        into the coalescer: a request still parked when it passes is
        rejected with :class:`~repro.serve.coalescer.
        DeadlineExceededError` instead of being dispatched.  Cache hits
        answer regardless (they are free).
        """
        if self._closed:
            raise RuntimeError("server is closed")
        # Canonicalise to int64, *rejecting* fractional values — a
        # silent dtype=int cast would truncate two distinct float
        # queries onto one cache key (and one search), serving the
        # second caller the first one's rows.
        query = canonical_int_query(query)
        # Full per-request validation happens *before* the query parks
        # in the coalescer: a batched dispatch validates whole batches,
        # and one malformed query must never fail the innocent callers
        # coalesced alongside it.
        primary = self._router.primary
        if query.shape != (primary.dims,):
            raise ValueError(
                f"search() serves one ({primary.dims},) query, got "
                f"{query.shape}"
            )
        hi = 1 << primary.bits
        if query.min() < 0 or query.max() >= hi:
            raise ValueError(f"query values outside [0, {hi})")
        if k < 1:
            raise ValueError("k must be >= 1")
        start = time.perf_counter()
        if self._cache.capacity and not self._router.poisoned:
            key = QueryCache.key(query, k, self.write_generation)
            entry = self._cache.get(key)
            if entry is not None:
                self.stats.record_request(
                    time.perf_counter() - start, cache_hit=True
                )
                # Writable copies, like the miss path hands out: a
                # caller mutating its result in place must behave the
                # same whether the cache was warm or not (and must
                # never corrupt the stored entry).
                return SearchOutcome(
                    ids=entry[0].copy(), distances=entry[1].copy()
                )
        try:
            ids, distances = await self._coalescer.submit(
                query, k, deadline=deadline
            )
        except Exception:
            self.stats.record_error()
            raise
        self.stats.record_request(time.perf_counter() - start)
        return SearchOutcome(ids=ids, distances=distances)

    async def search_many(
        self,
        queries: np.ndarray,
        k: int = 1,
        deadline: Optional[float] = None,
    ) -> SearchOutcome:
        """Serve a whole batch concurrently (one task per query, so the
        batch coalesces with any other traffic in flight); returns
        stacked ``(n, k)`` outcomes in query order."""
        if self._closed:
            raise RuntimeError("server is closed")
        queries = canonical_int_query(queries)
        if queries.ndim != 2:
            raise ValueError(
                f"search_many() takes (n, dims) queries, got "
                f"{queries.shape}"
            )
        if len(queries) == 0:
            # Even the empty batch goes through the router's read
            # admission: it must see poisoned-fleet errors and respect
            # writer exclusion like every other read.
            async with self._router.read() as replica:
                return replica.index.search(queries, k=k)
        results = await asyncio.gather(
            *(self.search(query, k, deadline=deadline) for query in queries)
        )
        return SearchOutcome(
            ids=np.stack([r.ids for r in results]),
            distances=np.stack([r.distances for r in results]),
        )

    async def _dispatch_inline(self, queries: np.ndarray, k: int):
        """Dispatch variant for the coalescer's sparse-traffic
        singleton fast path: the search runs on the event loop itself.
        The loop stalls for exactly the answer's own latency, which is
        acceptable precisely because the fast path only fires when
        nothing else is in flight — timer- and size-triggered batches
        (even size-1 k-groups inside a burst) never come through here.
        """
        return await self._dispatch(queries, k, inline=True)

    async def _run_search(
        self, replica, queries: np.ndarray, k: int, inline: bool
    ) -> SearchOutcome:
        """Evaluate one (sub-)batch on the right substrate: a pool
        worker process, inline on the loop (sparse singleton fast
        path), or the default executor thread."""
        if self._pool is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, self._pool.search, queries, k
            )
        if inline:
            return replica.index.search(queries, k)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, replica.index.search, queries, k
        )

    async def _dispatch(
        self, queries: np.ndarray, k: int, inline: bool = False
    ):
        """Coalescer flush target: probe the LRU once more, dedupe the
        remaining rows, route the shrunken micro-batch to a replica
        (a worker process when pooled), run the batched search
        off-loop, populate the cache.

        The dispatch-time probe matters most on the pool path — a row
        already populated by a batch that completed after this row's
        submit-time miss would otherwise still pay the executor hop
        *and* a worker round-trip — and intra-batch dedupe means a
        burst of identical queries coalesced into one flush computes
        once and fans out.
        """
        replica = await self._router.acquire_read()
        try:
            # The generation is stable for the whole batch: writers are
            # excluded while any read holds the replica set.
            generation = replica.index.write_generation
            pool = self._pool
            if pool is not None and pool.generation != generation:
                # Guarded at construction and re-synced by every server
                # write (republish runs inside the single-writer
                # critical section; failure poisons the pool) — this
                # catches the remaining hole, an out-of-band primary
                # mutation mid-serve.  An epoch mismatch must never
                # serve: the cache would file stale rows under the new
                # generation.
                raise PoolBrokenError(
                    f"pool serves generation {pool.generation}, "
                    f"primary is at {generation}; refusing stale reads"
                )
            if not self._cache.capacity:
                outcome = await self._run_search(replica, queries, k, inline)
                return outcome.ids, outcome.distances
            n = len(queries)
            keys = [QueryCache.key(query, k, generation) for query in queries]
            hits = {}
            for row, key in enumerate(keys):
                entry = self._cache.peek(key)
                if entry is not None:
                    hits[row] = entry
            if hits:
                self.stats.record_dispatch_hits(len(hits))
            # Identical rows compute once: lead row per distinct key.
            rows_by_key: dict = {}
            for row in range(n):
                if row not in hits:
                    rows_by_key.setdefault(keys[row], []).append(row)
            lead_rows = [rows[0] for rows in rows_by_key.values()]
            deduped = (n - len(hits)) - len(lead_rows)
            if deduped:
                self.stats.record_dispatch_dedup(deduped)
            if not hits and len(lead_rows) == n:
                # The common cold-batch case: nothing to reassemble.
                outcome = await self._run_search(replica, queries, k, inline)
                for row, key in enumerate(keys):
                    self._cache.put(
                        key, outcome.ids[row], outcome.distances[row]
                    )
                return outcome.ids, outcome.distances
            if lead_rows:
                outcome = await self._run_search(
                    replica, queries[np.asarray(lead_rows)], k, inline
                )
                for lead, key in enumerate(rows_by_key):
                    self._cache.put(
                        key, outcome.ids[lead], outcome.distances[lead]
                    )
            ids = np.empty((n, k), dtype=np.int64)
            distances = np.empty((n, k), dtype=float)
            for row, entry in hits.items():
                ids[row] = entry[0]
                distances[row] = entry[1]
            for lead, rows in enumerate(rows_by_key.values()):
                for row in rows:
                    ids[row] = outcome.ids[lead]
                    distances[row] = outcome.distances[lead]
            return ids, distances
        finally:
            self._router.release_read(replica)

    # ------------------------------------------------------------------
    # Write path (single writer, every replica, cache invalidated)
    # ------------------------------------------------------------------
    async def _write(self, mutate: Callable[[FerexIndex], object]):
        """Run one mutation through the router's single-writer path,
        republishing the process pool (when present) inside the same
        critical section — readers re-admitted after a write therefore
        always see it, whether they hit a thread replica or a worker
        process.

        The write contract is atomic-error: an exception means nothing
        changed (index mutations are atomic, and republish only runs
        after a successful mutation).  A republish failure therefore
        does *not* fail the write — the mutation is applied and
        durable, and raising would invite callers to retry it into
        duplicates.  Instead the error is kept on
        :attr:`last_republish_error` (and counted in the stats) while
        the read path stays fenced: a poisoned pool raises
        :class:`PoolBrokenError` from every search, and a pool left on
        the old generation trips the epoch guard in ``_dispatch``.  A
        later successful write re-syncs the pool.
        """
        if self._pool is None:
            return await self._router.write(mutate)
        pool = self._pool

        def mutate_then_republish(index: FerexIndex):
            # Runs on an executor thread (the router off-loads
            # mutations), so no stats or server-attribute writes here —
            # the outcome is returned to the loop thread instead.
            result = mutate(index)
            try:
                pool.republish()
            except Exception as exc:
                return result, exc
            return result, None

        result, republish_error = await self._router.write(
            mutate_then_republish
        )
        self._republish_error = republish_error
        if republish_error is not None:
            self.stats.record_error()
        else:
            self.stats.record_republish()
        return result

    @property
    def last_republish_error(self) -> Optional[BaseException]:
        """The most recent write's pool-republish failure (``None``
        after a clean write).  The write itself succeeded; reads are
        fenced until the pool re-syncs."""
        return self._republish_error

    async def add(
        self,
        vectors: np.ndarray,
        ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Store vectors on every replica; returns the assigned ids."""
        # Cleared in a finally: a failed write mutated nothing (index
        # mutations are atomic) so dropping the cache is merely
        # conservative — but it must drop even then, so a write that
        # *poisons* the fleet cannot leave stale hits behind.
        try:
            return await self._write(
                lambda index: index.add(vectors, ids=ids)
            )
        finally:
            self._cache.clear()

    async def remove(self, ids: Sequence[int]) -> int:
        """Tombstone ids on every replica."""
        try:
            return await self._write(lambda index: index.remove(ids))
        finally:
            self._cache.clear()

    async def compact(self) -> None:
        """Physically re-program the live set on every replica."""
        try:
            await self._write(lambda index: index.compact())
        finally:
            self._cache.clear()

    async def reconfigure(
        self,
        bits: Optional[int] = None,
        metric=None,
        banks: Optional[Sequence[int]] = None,
    ):
        """Re-voltage every replica at a new (metric, bits) — online,
        under live traffic.

        Rides the same single-writer critical section as ``add``: reads
        drain, each replica re-programs its banks from the retained
        stored codes (:meth:`repro.index.FerexIndex.reconfigure`), the
        process pool (when present) republishes the new-generation
        segments, parity is re-verified, and only then are reads
        re-admitted — so every request is answered either entirely at
        the old config or entirely at the new one, never a mix.  The
        generation bump makes all cached results unreachable; the
        explicit cache clear just releases their memory at once.
        """
        try:
            result = await self._write(
                lambda index: index.reconfigure(
                    bits=bits, metric=metric, banks=banks
                )
            )
        finally:
            self._cache.clear()
        self.stats.record_reconfigure()
        return result

    async def reconfigure_routing(
        self,
        top_p: Optional[int] = None,
        n_clusters: Optional[int] = None,
    ):
        """Move the routed backend's probe width and/or cluster count
        on every replica — online, under live traffic
        (:meth:`repro.index.FerexIndex.reconfigure_routing`).

        Same discipline as :meth:`reconfigure`: single-writer critical
        section, pool republish + parity re-check, generation-bumped
        cache invalidation — a request is routed entirely under the old
        geometry or entirely under the new one.
        """
        try:
            result = await self._write(
                lambda index: index.reconfigure_routing(
                    top_p=top_p, n_clusters=n_clusters
                )
            )
        finally:
            self._cache.clear()
        self.stats.record_reconfigure()
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drain in-flight batches and refuse further requests."""
        if self._closed:
            return
        self._closed = True
        await self._coalescer.close()

    async def __aenter__(self) -> "FerexServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
