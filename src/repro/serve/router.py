"""Replica routing: N bit-identical indexes, one writer, many readers.

A FeReX deployment scales read throughput by replicating the programmed
arrays: every replica of a :class:`repro.index.FerexIndex` built with
the same configuration (and seed) and driven through the same mutation
sequence answers searches bit-identically — device variation is drawn
per (bank, row position), not per replica.  :class:`ReplicaRouter`
enforces exactly that discipline:

* **reads** pick a replica by policy — ``round_robin`` spreads requests
  evenly, ``least_loaded`` picks the replica with the fewest in-flight
  batches (ties fall back to round-robin order) — and run concurrently;
* **writes** are single-writer: they serialise behind a lock, wait for
  in-flight reads to drain, apply the mutation to *every* replica in
  the same order, and then verify the replicas still agree (write
  generation + fingerprint) before any new read is admitted.

The parity check turns a divergence bug into a loud
:class:`ReplicaParityError` at the write that caused it, instead of a
silent wrong-answer somewhere downstream.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Callable, List, Sequence

from ..index import FerexIndex

_POLICIES = ("round_robin", "least_loaded")


class ReplicaParityError(RuntimeError):
    """Raised when replicas stop being bit-identical after a write."""


class Replica:
    """One routed index plus its load accounting."""

    __slots__ = ("index", "ordinal", "inflight", "served")

    def __init__(self, index: FerexIndex, ordinal: int):
        self.index = index
        self.ordinal = ordinal
        #: Reads currently executing against this replica.
        self.inflight = 0
        #: Total reads this replica has completed.
        self.served = 0

    def __repr__(self) -> str:
        return (
            f"Replica(ordinal={self.ordinal}, inflight={self.inflight}, "
            f"served={self.served})"
        )


class ReplicaRouter:
    """Routes reads across replicas; applies writes to all of them.

    Parameters
    ----------
    indexes:
        One or more :class:`FerexIndex` instances.  They must already
        agree (configuration and mutation history): the constructor
        runs the same parity check every write runs.
    policy:
        ``"round_robin"`` or ``"least_loaded"``.
    """

    def __init__(
        self,
        indexes: Sequence[FerexIndex],
        policy: str = "least_loaded",
    ):
        if not indexes:
            raise ValueError("need at least one replica index")
        if len({id(index) for index in indexes}) != len(indexes):
            # The same object twice would receive every write twice —
            # and a replica always "agrees" with itself, so the parity
            # check could never catch it.
            raise ValueError(
                "replicas must be distinct FerexIndex instances"
            )
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; known: {_POLICIES}"
            )
        self.policy = policy
        self._replicas = [
            Replica(index, ordinal)
            for ordinal, index in enumerate(indexes)
        ]
        self._rr_next = 0
        self._write_lock = asyncio.Lock()
        self._writer_active = False
        self._readers = 0
        self._no_readers = asyncio.Event()
        self._no_readers.set()
        self._read_admitted = asyncio.Event()
        self._read_admitted.set()
        #: Set when a write left the fleet divergent (should be
        #: impossible for deterministic indexes); every subsequent read
        #: and write is refused rather than serving wrong answers.
        self._poisoned = False
        self.check_parity()

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> List[Replica]:
        """Live replica handles (read-only introspection)."""
        return list(self._replicas)

    @property
    def n_replicas(self) -> int:
        return len(self._replicas)

    @property
    def primary(self) -> FerexIndex:
        """Replica 0 — the index whose generation keys the cache."""
        return self._replicas[0].index

    @property
    def poisoned(self) -> bool:
        """True once a write left the fleet divergent; reads and writes
        are refused from then on (the server also checks this before
        serving cache hits, which never reach :meth:`read`)."""
        return self._poisoned

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _pick(self) -> Replica:
        if self.policy == "round_robin":
            replica = self._replicas[self._rr_next % self.n_replicas]
            self._rr_next += 1
            return replica
        # least_loaded: min in-flight, round-robin among ties so an
        # idle fleet still spreads evenly.
        start = self._rr_next % self.n_replicas
        ordered = self._replicas[start:] + self._replicas[:start]
        replica = min(ordered, key=lambda r: r.inflight)
        self._rr_next += 1
        return replica

    async def acquire_read(self) -> Replica:
        """Admit one read and return the routed :class:`Replica`; the
        caller must pair it with :meth:`release_read`.  Split out from
        :meth:`read` so the serving hot path skips the async context
        manager machinery."""
        while self._writer_active:
            await self._read_admitted.wait()
        if self._poisoned:
            raise ReplicaParityError(
                "replica fleet diverged on an earlier write; refusing "
                "reads rather than serving replica-dependent answers"
            )
        replica = self._pick()
        replica.inflight += 1
        self._readers += 1
        self._no_readers.clear()
        return replica

    def release_read(self, replica: Replica) -> None:
        """Return a reader slot taken by :meth:`acquire_read`."""
        replica.inflight -= 1
        replica.served += 1
        self._readers -= 1
        if self._readers == 0:
            self._no_readers.set()

    @contextlib.asynccontextmanager
    async def read(self):
        """Admit one read: yields the routed :class:`Replica` while
        holding a reader slot (writers wait for all slots to clear)."""
        replica = await self.acquire_read()
        try:
            yield replica
        finally:
            self.release_read(replica)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    async def write(self, mutate: Callable[[FerexIndex], object]):
        """Apply ``mutate`` to every replica under the single-writer
        lock, then verify parity.  Returns the primary's result.

        The mutations run on a worker thread (array re-programming can
        take a while at scale), so the event loop keeps serving cache
        hits and timer flushes; exclusion comes from the writer flag and
        the drained reader count, not from blocking the loop.

        The fleet mutation is cancellation-atomic: the per-replica loop
        runs in a shielded task, so a caller timing out mid-write (e.g.
        ``asyncio.wait_for``) still waits for every replica — and the
        parity check — to finish before reads are re-admitted.  A write
        that leaves the fleet divergent anyway poisons the router:
        every later read/write raises :class:`ReplicaParityError`.
        """
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            if self._poisoned:
                raise ReplicaParityError(
                    "replica fleet diverged on an earlier write; "
                    "refusing further writes"
                )
            self._writer_active = True
            self._read_admitted.clear()
            try:
                await self._no_readers.wait()
                task = loop.create_task(self._apply_to_fleet(mutate))
                try:
                    return await asyncio.shield(task)
                except asyncio.CancelledError:
                    # The caller gave up, but a half-written fleet must
                    # never serve: wait the shielded mutation out (and
                    # consume its outcome) before propagating.
                    await asyncio.wait([task])
                    if not task.cancelled():
                        task.exception()
                    raise
            finally:
                self._writer_active = False
                self._read_admitted.set()

    async def _apply_to_fleet(
        self, mutate: Callable[[FerexIndex], object]
    ):
        loop = asyncio.get_running_loop()
        try:
            results = []
            for replica in self._replicas:
                results.append(
                    await loop.run_in_executor(
                        None, mutate, replica.index
                    )
                )
        except Exception:
            # Index mutations are atomic and deterministic, so a
            # rejected request fails identically on every replica
            # without mutating any — verify that before re-raising the
            # caller's error.
            self._verify_or_poison()
            raise
        self._verify_or_poison()
        return results[0]

    def _verify_or_poison(self) -> None:
        try:
            self.check_parity()
        except ReplicaParityError:
            self._poisoned = True
            raise

    def check_parity(self) -> None:
        """Raise :class:`ReplicaParityError` unless every replica agrees
        with the primary on (write generation, size, fingerprint)."""
        primary = self.primary
        expected = (
            primary.write_generation,
            primary.ntotal,
            primary.fingerprint(),
        )
        for replica in self._replicas[1:]:
            index = replica.index
            actual = (
                index.write_generation,
                index.ntotal,
                index.fingerprint(),
            )
            if actual != expected:
                raise ReplicaParityError(
                    f"replica {replica.ordinal} diverged from primary: "
                    f"(generation, ntotal, fingerprint) {actual} != "
                    f"{expected}"
                )
