"""The serving-layer stats surface.

:class:`ServerStats` is the one place the server records traffic:
request latencies (submit to result, cache hits included), dispatched
micro-batch sizes, and cache counters folded in at snapshot time.  The
latency summary shape is shared with the eval layer
(:func:`repro.eval.reporting.summarize_latencies`), so benchmark
artifacts and live snapshots diff against each other directly.

Like the query cache, stats are event-loop confined — every recording
call happens on the server's asyncio thread, so plain counters suffice.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Callable, Optional

from ..eval.reporting import format_table, summarize_latencies


def _json_int(value) -> int:
    """Coerce a counter-like value (incl. numpy integers) to plain int."""
    return int(value)


def _json_float(value) -> float:
    """Coerce a measurement (incl. numpy floats; None -> 0.0) to plain
    float."""
    return 0.0 if value is None else float(value)


class ServerStats:
    """Rolling serving metrics: qps, batch histogram, latency summary.

    Parameters
    ----------
    max_latency_samples:
        Latency ring-buffer depth; the percentile summary covers the
        most recent window of this many requests.
    clock:
        Monotonic time source (seconds); injectable for deterministic
        tests.
    """

    def __init__(
        self,
        max_latency_samples: int = 8192,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_latency_samples < 1:
            raise ValueError("max_latency_samples must be >= 1")
        self._clock = clock or time.perf_counter
        self._latencies = deque(maxlen=max_latency_samples)
        self.batch_sizes = Counter()
        self.n_requests = 0
        self.n_cache_hits = 0
        self.n_batches = 0
        self.n_errors = 0
        #: Micro-batch rows answered from the LRU at *dispatch* time
        #: (populated between this row's submit-time miss and its
        #: batch's flush), skipping the executor/pool hop.
        self.n_dispatch_cache_hits = 0
        #: Duplicate rows inside one micro-batch folded into a single
        #: backend computation.
        self.n_dispatch_deduped = 0
        #: Pool republishes completed by the write path.
        self.n_republishes = 0
        #: Online reconfigure operations served.
        self.n_reconfigures = 0
        #: Optional gauge probe returning the coalescer's pending-queue
        #: depth — the autoscaling signal; the server wires it up.
        self.queue_depth_probe: Optional[Callable[[], int]] = None
        #: Optional probe returning the query cache's snapshot dict
        #: (lifetime + windowed hit accounting and the admission
        #: policy's state); the server wires it up so ``/metrics`` and
        #: bench artifacts see cache behaviour per era.
        self.cache_probe: Optional[Callable[[], dict]] = None
        #: Extra named gauges folded into every snapshot (the server
        #: registers the coalescer EWMAs and deadline-drop count here).
        self._gauges: dict = {}
        self._started = self._clock()

    def register_gauge(
        self, name: str, probe: Callable[[], object]
    ) -> None:
        """Fold ``probe()`` into every :meth:`snapshot` under ``name``.

        The value is coerced to a plain int/float at snapshot time
        (``None`` reads as ``0.0``), preserving the snapshot's
        ``json.dumps``-without-encoders guarantee.
        """
        self._gauges[str(name)] = probe

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(
        self, latency_s: float, cache_hit: bool = False
    ) -> None:
        """One completed ``search`` call (hit or dispatched)."""
        self.n_requests += 1
        if cache_hit:
            self.n_cache_hits += 1
        self._latencies.append(float(latency_s))

    def record_batch(self, size: int) -> None:
        """One coalesced micro-batch handed to the index."""
        self.n_batches += 1
        self.batch_sizes[int(size)] += 1

    def record_error(self) -> None:
        """One request that completed with an exception."""
        self.n_errors += 1

    def record_dispatch_hits(self, n: int) -> None:
        """``n`` batch rows served from the cache at dispatch time."""
        self.n_dispatch_cache_hits += int(n)

    def record_dispatch_dedup(self, n: int) -> None:
        """``n`` duplicate batch rows folded into one computation."""
        self.n_dispatch_deduped += int(n)

    def record_republish(self) -> None:
        """One successful process-pool republish."""
        self.n_republishes += 1

    def record_reconfigure(self) -> None:
        """One completed online reconfigure."""
        self.n_reconfigures += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`reset`)."""
        return max(self._clock() - self._started, 1e-12)

    @property
    def qps(self) -> float:
        """Completed requests per second over the whole window."""
        return self.n_requests / self.elapsed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered from the query cache."""
        if self.n_requests == 0:
            return 0.0
        return self.n_cache_hits / self.n_requests

    @property
    def mean_batch_size(self) -> float:
        """Mean dispatched micro-batch size (0.0 before any dispatch)."""
        dispatched = sum(
            size * count for size, count in self.batch_sizes.items()
        )
        return dispatched / self.n_batches if self.n_batches else 0.0

    @property
    def coalescer_queue_depth(self) -> int:
        """Pending (parked, undispatched) requests right now — the
        queue-depth gauge worker autoscaling keys off (0 when no probe
        is wired)."""
        probe = self.queue_depth_probe
        return int(probe()) if probe is not None else 0

    def snapshot(self) -> dict:
        """One JSON-ready view of every counter, histogram and summary.

        Every value — counters, the histogram buckets, the queue-depth
        gauge, registered gauges, the latency summary — is a plain
        ``int``/``float``/``str``, so the ``/metrics`` endpoint and
        bench artifacts can ``json.dumps`` the snapshot without custom
        encoders, whatever (numpy-typed or ``None``) the recorders and
        probes supplied."""
        latency = {
            key: _json_int(value) if key == "count" else _json_float(value)
            for key, value in summarize_latencies(self._latencies).items()
        }
        snap = {
            "elapsed_s": _json_float(self.elapsed),
            "n_requests": _json_int(self.n_requests),
            "qps": _json_float(self.qps),
            "n_cache_hits": _json_int(self.n_cache_hits),
            "cache_hit_rate": _json_float(self.cache_hit_rate),
            "n_batches": _json_int(self.n_batches),
            "n_errors": _json_int(self.n_errors),
            "n_dispatch_cache_hits": _json_int(self.n_dispatch_cache_hits),
            "n_dispatch_deduped": _json_int(self.n_dispatch_deduped),
            "n_republishes": _json_int(self.n_republishes),
            "n_reconfigures": _json_int(self.n_reconfigures),
            "coalescer_queue_depth": _json_int(self.coalescer_queue_depth),
            "mean_batch_size": _json_float(self.mean_batch_size),
            "batch_size_histogram": {
                str(_json_int(size)): _json_int(count)
                for size, count in sorted(self.batch_sizes.items())
            },
            "latency": latency,
        }
        for name, probe in self._gauges.items():
            value = probe()
            snap[name] = (
                _json_int(value)
                if isinstance(value, int) and not isinstance(value, bool)
                else _json_float(value)
            )
        if self.cache_probe is not None:
            # The cache snapshot is JSON-safe by construction (plain
            # ints/floats/strs, policy section included).
            snap["cache"] = self.cache_probe()
        return snap

    def reset(self) -> None:
        """Zero every counter and restart the qps window."""
        self._latencies.clear()
        self.batch_sizes.clear()
        self.n_requests = 0
        self.n_cache_hits = 0
        self.n_batches = 0
        self.n_errors = 0
        self.n_dispatch_cache_hits = 0
        self.n_dispatch_deduped = 0
        self.n_republishes = 0
        self.n_reconfigures = 0
        self._started = self._clock()

    def format(self) -> str:
        """Human-readable one-screen summary (ASCII table)."""
        snap = self.snapshot()
        latency = snap["latency"]
        rows = [
            ["requests", f"{snap['n_requests']}"],
            ["qps", f"{snap['qps']:.1f}"],
            ["cache hit rate", f"{snap['cache_hit_rate']:.1%}"],
            ["batches", f"{snap['n_batches']}"],
            ["mean batch size", f"{snap['mean_batch_size']:.1f}"],
            ["p50 latency", f"{latency['p50'] * 1e3:.3f} ms"],
            ["p95 latency", f"{latency['p95'] * 1e3:.3f} ms"],
            ["errors", f"{snap['n_errors']}"],
        ]
        return format_table(
            ["metric", "value"], rows, title="FerexServer stats"
        )
