"""`ProcReplicaPool`: N worker processes serving one shared snapshot.

The asyncio serving stack coalesces concurrent callers into micro-batches
(:class:`~repro.serve.coalescer.RequestCoalescer`), but every batch still
evaluates inside one Python process — the GIL caps a replica *fleet* at
one core no matter how many threads carry it.  This module is the step
past that cap:

* the parent publishes the primary index's state once into
  shared-memory segments (:func:`repro.serve.shm.publish_index` — N
  replicas cost ~1x canonical index RAM);
* each worker process attaches the segments zero-copy, verifies the
  content fingerprint, and rebuilds a read-only replica whose answers
  are bit-identical to the primary (:func:`repro.serve.shm.
  attach_index`);
* searches route to idle workers over pipes — many batches genuinely in
  flight at once, one per core;
* writes never touch workers: the caller mutates the primary (through
  the usual single-writer path) and calls :meth:`ProcReplicaPool.
  republish`, which quiesces the pool, publishes a fresh
  generation-stamped segment set, re-attaches every worker (fingerprint
  re-verified), and only then retires the old segments.

Crash discipline: a worker that dies mid-request (OOM-killed, signalled,
kernel-reaped) is detected by its broken pipe, respawned from the
current manifest, and the request retries on another replica — reads
are idempotent, so the caller just sees the answer.  Only when respawns
themselves fail does the pool raise :class:`PoolBrokenError`.

Dispatch transport: with ``transport="slab"`` (the default) each worker
owns a preallocated request/response slab pair in shared memory.  The
parent writes the query batch into the request slab and sends only a
tiny header tuple ``(op, shape, dtype, k, generation)`` over the pipe;
the worker wraps the slab bytes zero-copy, searches, writes
``ids``/``distances`` straight into the response slab and replies with
a header.  Slabs grow (and are re-announced to the worker) on
overflow; payloads that cannot ride a slab at all — object dtypes,
slab allocation failure — fall back to the original pickle-over-pipe
path, which ``transport="pickle"`` selects unconditionally for
debugging.  Results are copied on return: the worker re-enters the
idle queue immediately, so a zero-copy view would race the very next
dispatch into the same slab.
"""

from __future__ import annotations

import gc
import multiprocessing
import queue
import threading
from math import prod
from typing import List, Optional

import numpy as np

from ..index import FerexIndex, SearchOutcome
from .shm import (
    DispatchSlabs,
    PublishedSegments,
    SegmentManifest,
    SlabManifest,
    attach_index,
    attach_slabs,
    create_slabs,
    publish_index,
)

#: Seconds to wait for a freshly spawned worker's ready handshake
#: (spawn pays interpreter start + import + attach re-program).
_SPAWN_TIMEOUT_S = 120.0
#: Seconds to wait for a worker's re-attach during republish.
_ATTACH_TIMEOUT_S = 120.0


class PoolBrokenError(RuntimeError):
    """The pool can no longer guarantee replica parity (spawn or
    republish failed beyond recovery); refusing to serve."""


class _WorkerUnresponsive(Exception):
    """Internal: a live worker missed its reply deadline (treated like
    a crash: retire, respawn, retry)."""


class _SlabUnavailable(Exception):
    """Internal: a slab could not be allocated or announced for this
    dispatch; the batch falls back to the pickle path (the worker
    itself is healthy)."""


#: Bytes per ``(id, distance)`` result cell: int64 + float64.
_RESULT_CELL_BYTES = 16


def _slab_capacity(need: int) -> int:
    """Round a byte requirement up to the next power of two (floored at
    4 KiB) so repeated marginal overflows don't re-slab every batch."""
    return max(4096, 1 << max(0, int(need) - 1).bit_length())


def _portable_exc(exc: BaseException) -> BaseException:
    """Best-effort picklable stand-in for an arbitrary exception."""
    try:
        import pickle

        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _slab_search(index, slabs, message) -> tuple:
    """Serve one slab-transport search inside the worker: wrap the
    request slab zero-copy, search, write the results into the response
    slab, return the reply header."""
    _, shape, dtype_str, k, generation = message
    queries = np.frombuffer(
        slabs.request.buf, dtype=np.dtype(dtype_str), count=prod(shape)
    ).reshape(shape)
    try:
        outcome = index.search(queries, k=k)
    finally:
        del queries  # release the buffer export before any re-slab
    ids = np.ascontiguousarray(outcome.ids, dtype="<i8")
    distances = np.ascontiguousarray(outcome.distances, dtype="<f8")
    if ids.nbytes + distances.nbytes > slabs.response.size:
        # The parent pre-sizes the response slab from (n, k); reaching
        # this means the two sides disagree about the result shape.
        raise RuntimeError(
            f"result of {ids.nbytes + distances.nbytes} bytes overflows "
            f"the {slabs.response.size}-byte response slab"
        )
    out_ids = np.frombuffer(
        slabs.response.buf, dtype="<i8", count=ids.size
    ).reshape(ids.shape)
    out_ids[...] = ids
    out_distances = np.frombuffer(
        slabs.response.buf,
        dtype="<f8",
        count=distances.size,
        offset=ids.nbytes,
    ).reshape(distances.shape)
    out_distances[...] = distances
    del out_ids, out_distances
    return ("ok_slab", tuple(ids.shape), generation)


def _worker_main(
    conn,
    manifest: SegmentManifest,
    slab_manifest: Optional[SlabManifest] = None,
) -> None:
    """Worker process body: attach the published snapshot (and, under
    the slab transport, the dispatch slabs), then serve
    ``search``/``search_slab``/``republish``/``ping`` requests until
    closed."""
    index = None
    attached = None
    slabs: Optional[DispatchSlabs] = None

    def _attach(new_manifest):
        nonlocal index, attached
        old_index, old_attached = index, attached
        index = attached = None
        # Drop every view over the old buffers before unmapping them.
        del old_index
        if old_attached is not None:
            gc.collect()
            old_attached.close()
        index, attached = attach_index(new_manifest)

    try:
        try:
            _attach(manifest)
            if slab_manifest is not None:
                slabs = attach_slabs(slab_manifest)
        except Exception as exc:
            conn.send(("attach_error", _portable_exc(exc)))
            return
        conn.send(("ready", manifest.generation, manifest.fingerprint))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            op = message[0]
            if op == "search":
                _, queries, k = message
                try:
                    outcome = index.search(queries, k=k)
                    conn.send(("ok", outcome.ids, outcome.distances))
                except Exception as exc:
                    conn.send(("error", _portable_exc(exc)))
            elif op == "search_slab":
                try:
                    if slabs is None:
                        raise RuntimeError(
                            "slab dispatch reached a worker with no "
                            "slabs attached"
                        )
                    if message[4] != attached.manifest.generation:
                        raise RuntimeError(
                            f"slab dispatch stamped generation "
                            f"{message[4]} reached a worker serving "
                            f"{attached.manifest.generation}"
                        )
                    conn.send(_slab_search(index, slabs, message))
                except Exception as exc:
                    conn.send(("error", _portable_exc(exc)))
            elif op == "reslab":
                _, new_slab_manifest = message
                try:
                    old_slabs, slabs = slabs, None
                    if old_slabs is not None:
                        gc.collect()
                        old_slabs.close()
                    slabs = attach_slabs(new_slab_manifest)
                except Exception as exc:
                    conn.send(("attach_error", _portable_exc(exc)))
                    return
                conn.send(("slab_ready",))
            elif op == "republish":
                _, new_manifest = message
                try:
                    _attach(new_manifest)
                except Exception as exc:
                    conn.send(("attach_error", _portable_exc(exc)))
                    return
                conn.send(
                    (
                        "ready",
                        new_manifest.generation,
                        new_manifest.fingerprint,
                    )
                )
            elif op == "ping":
                conn.send(
                    (
                        "pong",
                        attached.manifest.generation,
                        attached.manifest.fingerprint,
                    )
                )
            elif op == "close":
                return
    finally:
        index = None
        gc.collect()
        if attached is not None:
            attached.close()
        if slabs is not None:
            slabs.close()
        conn.close()


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "ordinal", "served", "slabs")

    def __init__(
        self,
        process,
        conn,
        ordinal: int,
        slabs: Optional[DispatchSlabs] = None,
    ):
        self.process = process
        self.conn = conn
        self.ordinal = ordinal
        #: Searches this worker has answered (parent-side count).
        self.served = 0
        #: This worker's dispatch slab pair (parent-owned; ``None``
        #: under the pickle transport).
        self.slabs = slabs

    def __repr__(self) -> str:
        alive = self.process.is_alive()
        return (
            f"_Worker(ordinal={self.ordinal}, pid={self.process.pid}, "
            f"alive={alive}, served={self.served})"
        )


class ProcReplicaPool:
    """Multi-process read replicas over shared-memory index segments.

    Parameters
    ----------
    index:
        The primary :class:`FerexIndex`.  The pool publishes its state
        at construction; later mutations reach workers only through
        :meth:`republish`.
    n_workers:
        Worker process count (one busy search per worker at a time; the
        useful ceiling is the machine's core count).
    start_method:
        ``multiprocessing`` start method.  The default ``"spawn"`` is
        safe next to the asyncio server's executor threads; ``"fork"``
        is faster to start but forks whatever locks those threads hold.
    name_prefix:
        Shared-memory block name prefix (diagnostic; names are
        collision-proofed regardless).
    search_timeout_s:
        Reply deadline per routed batch.  A worker that is alive but
        wedged (stuck syscall, deadlocked attach) would otherwise
        block its batch — and, via the quiesce, every later
        republish — forever; missing the deadline is treated exactly
        like a crash (retire, respawn, retry elsewhere).  Generous by
        default: two orders of magnitude above any bench batch.
    transport:
        ``"slab"`` (default) dispatches query batches through per-worker
        shared-memory slabs — the parent memcpys the batch once and
        sends only a header tuple over the pipe; ``"pickle"`` keeps the
        original pickle-over-pipe path (debugging, and the automatic
        fallback for payloads a slab cannot carry).
    slab_batch_rows:
        Initial request-slab sizing: rows × ``index.dims`` × 8 bytes
        (the coalescer's ``max_batch_size`` is the natural value).
        Slabs grow on overflow regardless, so this is a hint, not a
        cap.

    Thread safety: :meth:`search` may be called from many threads (the
    server's executor does); workers are checked out of an idle queue,
    so concurrent searches run truly in parallel, one per worker.
    """

    def __init__(
        self,
        index: FerexIndex,
        n_workers: int = 2,
        start_method: str = "spawn",
        name_prefix: str = "ferex",
        search_timeout_s: float = 120.0,
        transport: str = "slab",
        slab_batch_rows: int = 64,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if search_timeout_s <= 0:
            raise ValueError("search_timeout_s must be > 0")
        if transport not in ("slab", "pickle"):
            raise ValueError(
                f"transport must be 'slab' or 'pickle', got {transport!r}"
            )
        if slab_batch_rows < 1:
            raise ValueError("slab_batch_rows must be >= 1")
        self.search_timeout_s = search_timeout_s
        self.index = index
        self.n_workers = n_workers
        self.transport = transport
        #: Dispatches that rode a slab / fell back to pickle (under
        #: ``transport="pickle"`` every dispatch counts as a fallback).
        self.n_slab_dispatches = 0
        self.n_pickle_fallbacks = 0
        #: Slab-overflow regrows (per worker-slab pair).
        self.n_slab_grows = 0
        # High-water slab sizing: respawned/grown workers start at the
        # largest capacity any batch has needed so far.
        self._slab_request_bytes = _slab_capacity(
            slab_batch_rows * max(1, index.dims) * 8
        )
        self._slab_response_bytes = _slab_capacity(
            slab_batch_rows * 16 * _RESULT_CELL_BYTES
        )
        self._name_prefix = name_prefix
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()  # _published / _workers / flags
        self._publish_lock = threading.Lock()  # serialises republish
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._workers: List[_Worker] = []
        self._next_ordinal = 0
        self._broken = False
        self._closed = False
        self.respawns = 0
        self._published: Optional[PublishedSegments] = publish_index(
            index, name_prefix=name_prefix
        )
        try:
            for _ in range(n_workers):
                worker = self._spawn_worker(self._published.manifest)
                self._workers.append(worker)
                self._idle.put(worker)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Primary write generation the workers currently serve
        (``-1`` once the pool is closed)."""
        published = self._published
        return -1 if published is None else published.manifest.generation

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the published snapshot (empty once
        the pool is closed)."""
        published = self._published
        return "" if published is None else published.manifest.fingerprint

    @property
    def broken(self) -> bool:
        """True once the pool lost a worker slot it could not refill;
        every later ``search``/``republish`` raises
        :class:`PoolBrokenError`."""
        return self._broken

    @property
    def workers(self) -> List[_Worker]:
        """Live worker handles (read-only introspection)."""
        return list(self._workers)

    def snapshot(self) -> dict:
        """JSON-ready pool state for stats surfaces and benches."""
        return {
            "n_workers": self.n_workers,
            "generation": self.generation,
            "respawns": self.respawns,
            "transport": self.transport,
            "n_slab_dispatches": self.n_slab_dispatches,
            "n_pickle_fallbacks": self.n_pickle_fallbacks,
            "n_slab_grows": self.n_slab_grows,
            "slab_request_bytes": self._slab_request_bytes,
            "slab_response_bytes": self._slab_response_bytes,
            "served_per_worker": [w.served for w in self._workers],
        }

    def __repr__(self) -> str:
        return (
            f"ProcReplicaPool(n_workers={self.n_workers}, "
            f"generation={self.generation}, respawns={self.respawns})"
        )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, manifest: SegmentManifest) -> _Worker:
        slabs: Optional[DispatchSlabs] = None
        if self.transport == "slab":
            slabs = create_slabs(
                self._slab_request_bytes,
                self._slab_response_bytes,
                name_prefix=self._name_prefix,
            )
        try:
            parent_conn, child_conn = self._ctx.Pipe()
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    manifest,
                    None if slabs is None else slabs.manifest,
                ),
                name=f"{self._name_prefix}-replica-{ordinal}",
                daemon=True,
            )
            process.start()
        except Exception:
            if slabs is not None:
                slabs.unlink()
            raise
        child_conn.close()  # the worker owns its end now
        worker = _Worker(process, parent_conn, ordinal, slabs=slabs)
        try:
            self._expect_ready(worker, manifest, timeout=_SPAWN_TIMEOUT_S)
        except Exception:
            # A worker that failed its handshake (attach error, parity
            # mismatch, timeout) must not linger as an orphan burning
            # CPU and holding segment mappings.
            self._retire(worker)
            raise
        return worker

    def _expect_ready(
        self, worker: _Worker, manifest: SegmentManifest, timeout: float
    ) -> None:
        """Consume one handshake and verify generation + fingerprint —
        the attach-time parity check, enforced on both ends."""
        try:
            if not worker.conn.poll(timeout):
                raise PoolBrokenError(
                    f"worker {worker.ordinal} did not attach within "
                    f"{timeout:.0f}s"
                )
            reply = worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise PoolBrokenError(
                f"worker {worker.ordinal} died during attach"
            ) from exc
        if reply[0] == "attach_error":
            raise reply[1]
        if reply[0] != "ready" or reply[1:] != (
            manifest.generation,
            manifest.fingerprint,
        ):
            raise PoolBrokenError(
                f"worker {worker.ordinal} attached out of parity: "
                f"{reply!r} != ('ready', {manifest.generation}, "
                f"{manifest.fingerprint})"
            )

    def _retire(self, worker: _Worker) -> None:
        """Hard-stop a dead or misbehaving worker's process + pipe, and
        reclaim its dispatch slabs."""
        try:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        slabs, worker.slabs = worker.slabs, None
        if slabs is not None:
            try:
                slabs.unlink()
            except Exception:
                pass

    def _replace(self, worker: _Worker) -> _Worker:
        """Respawn a crashed worker from the current manifest.  Marks
        the pool broken (and re-raises) when the respawn itself fails —
        a pool that cannot hold its replica count must not limp on."""
        self._retire(worker)
        with self._lock:
            if self._closed or self._published is None:
                # close() raced us (it already killed the fleet): the
                # caller sees the same error a fresh search would.
                raise RuntimeError("pool is closed")
            manifest = self._published.manifest
        try:
            replacement = self._spawn_worker(manifest)
        except Exception:
            with self._lock:
                self._broken = True
            raise
        with self._lock:
            if self._closed:
                # close() ran while we were spawning and never saw the
                # replacement; don't leave it orphaned.
                self._retire(replacement)
                raise RuntimeError("pool is closed")
            self._workers = [
                replacement if w is worker else w for w in self._workers
            ]
            self.respawns += 1
        return replacement

    def _get_idle(self) -> _Worker:
        """Check out an idle worker, noticing shutdown/poison while
        waiting (a broken pool must not strand blocked callers)."""
        while True:
            if self._closed:
                raise RuntimeError("pool is closed")
            if self._broken:
                raise PoolBrokenError(
                    "pool lost a worker and could not respawn it"
                )
            try:
                return self._idle.get(timeout=0.1)
            except queue.Empty:
                continue

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    @staticmethod
    def _slab_batch(queries) -> Optional[np.ndarray]:
        """The contiguous 2-D array a slab can carry, or ``None`` when
        this payload must ride the pickle fallback (object dtypes,
        ragged input the array constructor rejects)."""
        try:
            batch = np.ascontiguousarray(queries)
        except Exception:
            return None
        if batch.ndim != 2 or batch.dtype.hasobject:
            return None
        return batch

    def _grow_slabs(
        self, worker: _Worker, need_request: int, need_response: int
    ) -> None:
        """Swap one worker's slab pair for a bigger one (the worker is
        checked out, so nothing else touches its slabs).  Allocation
        failures raise :class:`_SlabUnavailable` (the dispatch falls
        back to pickle); a worker that cannot adopt the new slabs is
        treated like a crash by the caller."""
        old = worker.slabs
        with self._lock:
            self._slab_request_bytes = max(
                self._slab_request_bytes, _slab_capacity(need_request)
            )
            self._slab_response_bytes = max(
                self._slab_response_bytes, _slab_capacity(need_response)
            )
            new_request_bytes = self._slab_request_bytes
            new_response_bytes = self._slab_response_bytes
        try:
            new = create_slabs(
                new_request_bytes,
                new_response_bytes,
                name_prefix=self._name_prefix,
            )
        except Exception as exc:
            raise _SlabUnavailable() from exc
        try:
            worker.conn.send(("reslab", new.manifest))
            if not worker.conn.poll(_ATTACH_TIMEOUT_S):
                raise _WorkerUnresponsive()
            reply = worker.conn.recv()
        except Exception:
            new.unlink()
            raise
        if reply[0] != "slab_ready":
            # attach_error (the worker already exited) or desync.
            new.unlink()
            raise _WorkerUnresponsive()
        worker.slabs = new
        if old is not None:
            old.unlink()
        with self._lock:
            self.n_slab_grows += 1

    def _dispatch_slab(self, worker: _Worker, batch: np.ndarray, k: int):
        """Send one batch over the worker's slabs; returns the reply
        tuple.  The caller translates worker-death exceptions."""
        need_response = len(batch) * max(int(k), 1) * _RESULT_CELL_BYTES
        if (
            batch.nbytes > worker.slabs.manifest.request_bytes
            or need_response > worker.slabs.manifest.response_bytes
        ):
            self._grow_slabs(worker, batch.nbytes, need_response)
        view = np.frombuffer(
            worker.slabs.request.buf, dtype=batch.dtype, count=batch.size
        ).reshape(batch.shape)
        view[...] = batch
        del view
        worker.conn.send(
            (
                "search_slab",
                batch.shape,
                batch.dtype.str,
                k,
                self.generation,
            )
        )
        if not worker.conn.poll(self.search_timeout_s):
            raise _WorkerUnresponsive()
        return worker.conn.recv()

    def search(self, queries, k: int = 1) -> SearchOutcome:
        """Route one micro-batch to an idle worker; bit-identical to
        ``self.index.search(queries, k)``.

        Blocks while every worker is busy (callers above this layer —
        the coalescer — bound how many batches are in flight).  A
        worker crash mid-request respawns the worker and retries the
        batch on another replica.
        """
        batch = (
            self._slab_batch(queries) if self.transport == "slab" else None
        )
        attempts = 0
        while True:
            worker = self._get_idle()
            use_slab = batch is not None and worker.slabs is not None
            try:
                if use_slab:
                    try:
                        reply = self._dispatch_slab(worker, batch, k)
                    except _SlabUnavailable:
                        reply = self._dispatch_pickle(worker, queries, k)
                else:
                    reply = self._dispatch_pickle(worker, queries, k)
            except (
                BrokenPipeError,
                EOFError,
                OSError,
                _WorkerUnresponsive,
            ):
                # The worker died under us; put a fresh replica in its
                # slot and retry the (idempotent) read elsewhere.
                replacement = self._replace(worker)
                self._idle.put(replacement)
                attempts += 1
                if attempts > self.n_workers:
                    raise PoolBrokenError(
                        f"search failed on {attempts} replicas in a row"
                    )
                continue
            if reply[0] == "ok_slab":
                n, kk = reply[1]
                # Copy out *before* the worker re-enters the idle
                # queue: the very next dispatch reuses this slab.
                ids = (
                    np.frombuffer(
                        worker.slabs.response.buf, dtype="<i8", count=n * kk
                    )
                    .reshape(n, kk)
                    .copy()
                )
                distances = (
                    np.frombuffer(
                        worker.slabs.response.buf,
                        dtype="<f8",
                        count=n * kk,
                        offset=n * kk * 8,
                    )
                    .reshape(n, kk)
                    .copy()
                )
                worker.served += 1
                self._idle.put(worker)
                with self._lock:
                    self.n_slab_dispatches += 1
                return SearchOutcome(ids=ids, distances=distances)
            if reply[0] == "ok":
                worker.served += 1
                self._idle.put(worker)
                with self._lock:
                    self.n_pickle_fallbacks += 1
                return SearchOutcome(ids=reply[1], distances=reply[2])
            if reply[0] == "error" and isinstance(reply[1], BaseException):
                worker.served += 1
                self._idle.put(worker)
                raise reply[1]
            # Protocol desync (should be unreachable): this pipe's
            # request/reply pairing can no longer be trusted, so
            # retire the worker rather than guess at its next reply.
            replacement = self._replace(worker)
            self._idle.put(replacement)
            raise PoolBrokenError(
                f"worker {worker.ordinal} sent an out-of-protocol "
                f"reply {reply[:1]!r}; worker replaced"
            )

    def _dispatch_pickle(self, worker: _Worker, queries, k: int):
        """The original pickle-over-pipe dispatch (the ``transport=
        "pickle"`` path and the slab fallback)."""
        worker.conn.send(("search", queries, k))
        if not worker.conn.poll(self.search_timeout_s):
            raise _WorkerUnresponsive()
        return worker.conn.recv()

    # ------------------------------------------------------------------
    # Write propagation
    # ------------------------------------------------------------------
    def republish(self) -> int:
        """Publish the primary's current state and move every worker to
        it; returns the new generation.

        Quiesces the pool (waits for in-flight searches), publishes a
        fresh segment set stamped with the primary's write generation,
        re-attaches each worker (fingerprint parity re-verified), then
        unlinks the retired generation's segments.

        *Any* per-worker re-attach failure — pipe death, attach
        timeout, integrity error — leaves that worker's state
        unknowable, so it is retired and respawned straight onto the
        new manifest; only confirmed new-generation workers ever return
        to the idle queue.  If even one slot cannot be refilled the
        pool poisons itself (every later ``search``/``republish``
        raises :class:`PoolBrokenError`) rather than serve a fleet
        that straddles generations.
        """
        with self._publish_lock:
            held = [self._get_idle() for _ in range(self.n_workers)]
            try:
                new = publish_index(
                    self.index, name_prefix=self._name_prefix
                )
            except Exception:
                # Nothing swapped yet: the old generation is still the
                # published truth, every held worker still serves it.
                for worker in held:
                    self._idle.put(worker)
                raise
            with self._lock:
                if self._closed or self._published is None:
                    # close() raced us: it already retired the held
                    # workers and unlinked the old generation; drop the
                    # segments we just published instead of leaking
                    # them past the closed pool.
                    new.unlink()
                    raise RuntimeError("pool is closed")
                old, self._published = self._published, new
            manifest = new.manifest
            refreshed = []
            casualties = []
            failures = 0
            # Broadcast first, then collect: the workers re-attach in
            # parallel, so the write stall is ~one attach, not
            # n_workers of them.
            broadcast = []
            for worker in held:
                try:
                    worker.conn.send(("republish", manifest))
                    broadcast.append(worker)
                except Exception:
                    casualties.append(worker)
            for worker in broadcast:
                try:
                    self._expect_ready(
                        worker, manifest, timeout=_ATTACH_TIMEOUT_S
                    )
                    refreshed.append(worker)
                except Exception:
                    casualties.append(worker)
            for worker in casualties:
                try:
                    refreshed.append(self._replace(worker))
                except Exception:
                    failures += 1
                    with self._lock:
                        self._broken = True
            for worker in refreshed:
                self._idle.put(worker)
            # Failed workers were killed, confirmed workers moved on:
            # nothing maps the old generation's segments any more.
            old.unlink()
            if failures:
                raise PoolBrokenError(
                    f"republish could not move {failures} worker(s) to "
                    f"generation {manifest.generation}; pool refuses "
                    f"to serve a generation-straddling fleet"
                )
            return manifest.generation

    # ------------------------------------------------------------------
    # Elastic worker count (the autoscaler's actuators)
    # ------------------------------------------------------------------
    def grow(self, n: int = 1) -> int:
        """Spawn ``n`` extra workers onto the currently published
        generation; returns the new worker count.

        Reuses the ordinary spawn machinery (handshake, fingerprint
        parity check) and serialises against :meth:`republish` and
        :meth:`shrink`, so a new worker can never attach to a
        generation that is being retired under it.  A spawn failure
        propagates but does *not* poison the pool: no existing slot was
        lost, and any workers already added by this call stay.
        """
        if n < 1:
            raise ValueError("grow() needs n >= 1")
        with self._publish_lock:
            with self._lock:
                if self._closed or self._published is None:
                    raise RuntimeError("pool is closed")
                if self._broken:
                    raise PoolBrokenError(
                        "pool lost a worker and could not respawn it"
                    )
                manifest = self._published.manifest
            for _ in range(n):
                worker = self._spawn_worker(manifest)
                with self._lock:
                    if self._closed:
                        self._retire(worker)
                        raise RuntimeError("pool is closed")
                    self._workers.append(worker)
                    self.n_workers += 1
                self._idle.put(worker)
            return self.n_workers

    def shrink(self, n: int = 1) -> int:
        """Retire ``n`` workers; returns the new worker count.

        Each retired worker is checked out of the idle queue first —
        exactly the quiesce step :meth:`republish` uses — so a worker
        is only ever stopped *between* requests: in-flight searches
        finish on their worker and nothing is dropped or retried.
        The pool refuses to shrink below one worker (the autoscaler's
        ``min_workers`` clamp sits above this floor).
        """
        if n < 1:
            raise ValueError("shrink() needs n >= 1")
        with self._publish_lock:
            with self._lock:
                if self._closed:
                    raise RuntimeError("pool is closed")
                if self.n_workers - n < 1:
                    raise ValueError(
                        f"cannot shrink a {self.n_workers}-worker pool "
                        f"by {n}: at least one worker must remain"
                    )
            for _ in range(n):
                worker = self._get_idle()
                try:
                    worker.conn.send(("close",))
                    worker.process.join(timeout=5)
                except Exception:
                    pass
                self._retire(worker)
                with self._lock:
                    self._workers = [
                        w for w in self._workers if w is not worker
                    ]
                    self.n_workers -= 1
            return self.n_workers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the shared segments."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("close",))
            except Exception:
                pass
        for worker in self._workers:
            try:
                worker.process.join(timeout=5)
            except Exception:
                pass
            self._retire(worker)
        self._workers = []
        # Drain any stale idle-queue entries (handles already retired).
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break
        published: Optional[PublishedSegments]
        with self._lock:
            published, self._published = self._published, None
        if published is not None:
            published.unlink()

    def __enter__(self) -> "ProcReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
