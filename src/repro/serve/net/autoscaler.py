"""Pool autoscaling from the coalescer's queue-depth gauge.

PR 5 exposed the signal (``ServerStats.coalescer_queue_depth``); this
module is its consumer.  The control loop is intentionally boring —
boring controllers are the ones whose behaviour operators can predict:

* every tick, read the **queue depth** (requests parked in the
  coalescer, waiting for a flush) and the **EWMA service time** (the
  coalescer's own estimate of how long a dispatched batch takes);
* their product is the *backlog* in seconds — how long the queue would
  take to drain right now.  Depth alone is the wrong unit: 30 parked
  requests are an emergency when a batch takes 50 ms and irrelevant
  when it takes 50 µs;
* a backlog above ``high_backlog_s`` for ``up_ticks`` consecutive
  ticks grows the pool by one worker; below ``low_backlog_s`` for
  ``down_ticks`` consecutive ticks shrinks it by one.  The dead band
  between the watermarks plus the longer down-streak is the
  hysteresis that keeps the pool from flapping on bursty traffic;
* worker count is clamped to ``[min_workers, max_workers]`` — the
  controller saturates silently at either end.

The decision logic (:meth:`Autoscaler.tick`) is synchronous and takes
injected probes, so tests drive it with a scripted gauge;
:meth:`Autoscaler.run` is the production loop, which applies grow and
shrink on an executor thread because spawning a worker process takes
seconds and must not stall the event loop that is busy serving.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Optional


class Autoscaler:
    """Grow/shrink a worker pool between ``min_workers``/``max_workers``
    from the queue-depth gauge and EWMA service time.

    Parameters
    ----------
    pool:
        Anything with ``n_workers``, ``grow()`` and ``shrink()`` —
        a :class:`~repro.serve.procpool.ProcReplicaPool` in production,
        a scripted fake in tests.
    depth_probe:
        Returns the coalescer's current pending-queue depth (the
        server exposes it as ``stats.coalescer_queue_depth``).
    service_probe:
        Returns the EWMA batch service time in seconds, or ``None``
        before the first batch (the coalescer's ``ewma_service_s``);
        ``fallback_service_s`` substitutes for ``None``.
    high_backlog_s / low_backlog_s:
        Scale-up / scale-down watermarks on the estimated drain time
        ``depth * service``.  ``low`` must sit strictly below ``high``;
        the gap is the hysteresis dead band.
    up_ticks / down_ticks:
        Consecutive ticks the backlog must hold beyond a watermark
        before the pool is resized.  Scale-down defaults slower than
        scale-up: adding capacity late costs latency, removing it
        early costs a respawn seconds later.
    interval_s:
        Tick period of the :meth:`run` loop.
    """

    def __init__(
        self,
        pool,
        depth_probe: Callable[[], int],
        service_probe: Optional[Callable[[], Optional[float]]] = None,
        min_workers: int = 1,
        max_workers: int = 4,
        high_backlog_s: float = 0.02,
        low_backlog_s: float = 0.002,
        fallback_service_s: float = 0.005,
        up_ticks: int = 2,
        down_ticks: int = 5,
        interval_s: float = 0.25,
    ):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not 0 <= low_backlog_s < high_backlog_s:
            raise ValueError(
                "need 0 <= low_backlog_s < high_backlog_s "
                f"(got {low_backlog_s} / {high_backlog_s})"
            )
        if up_ticks < 1 or down_ticks < 1:
            raise ValueError("up_ticks and down_ticks must be >= 1")
        if fallback_service_s <= 0:
            raise ValueError("fallback_service_s must be > 0")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.pool = pool
        self.depth_probe = depth_probe
        self.service_probe = service_probe
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.high_backlog_s = float(high_backlog_s)
        self.low_backlog_s = float(low_backlog_s)
        self.fallback_service_s = float(fallback_service_s)
        self.up_ticks = int(up_ticks)
        self.down_ticks = int(down_ticks)
        self.interval_s = float(interval_s)
        self._up_streak = 0
        self._down_streak = 0
        self.n_ticks = 0
        self.n_grows = 0
        self.n_shrinks = 0
        self.n_errors = 0
        self.last_backlog_s = 0.0
        self.last_error: Optional[BaseException] = None
        #: Recent (tick, action, n_workers) scaling events.
        self.events: deque = deque(maxlen=64)
        self._stop = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Decision + actuation
    # ------------------------------------------------------------------
    def _decide(self) -> Optional[str]:
        """Read the probes, update the streaks, pick an action (or
        None).  Pure control logic — nothing is resized here."""
        depth = int(self.depth_probe())
        service = self.service_probe() if self.service_probe else None
        if service is None:
            service = self.fallback_service_s
        self.last_backlog_s = depth * float(service)
        self.n_ticks += 1
        if self.last_backlog_s >= self.high_backlog_s:
            self._up_streak += 1
            self._down_streak = 0
        elif self.last_backlog_s <= self.low_backlog_s:
            self._down_streak += 1
            self._up_streak = 0
        else:
            # Dead band: hold steady, reset both streaks — the signal
            # must commit to a direction before the pool moves.
            self._up_streak = 0
            self._down_streak = 0
        if (
            self._up_streak >= self.up_ticks
            and self.pool.n_workers < self.max_workers
        ):
            return "grow"
        if (
            self._down_streak >= self.down_ticks
            and self.pool.n_workers > self.min_workers
        ):
            return "shrink"
        return None

    def _apply(self, action: str) -> None:
        """Resize by one worker; a pool failure is recorded, not
        raised — a scaling hiccup must never take the control loop (or
        the serving loop above it) down."""
        try:
            if action == "grow":
                self.pool.grow()
                self.n_grows += 1
            else:
                self.pool.shrink()
                self.n_shrinks += 1
            self.events.append(
                (self.n_ticks, action, int(self.pool.n_workers))
            )
        except Exception as exc:
            self.n_errors += 1
            self.last_error = exc
        finally:
            self._up_streak = 0
            self._down_streak = 0

    def tick(self) -> Optional[str]:
        """One synchronous control step: decide and (when warranted)
        resize.  Returns ``"grow"``, ``"shrink"`` or ``None`` — the
        unit-test entry point, and exactly what :meth:`run` executes
        per interval."""
        action = self._decide()
        if action is not None:
            self._apply(action)
        return action

    # ------------------------------------------------------------------
    # The production loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Tick every ``interval_s`` until :meth:`stop`.  Resizes run
        on an executor thread: ``grow()`` blocks for a process spawn
        and ``shrink()`` for an idle-queue checkout, neither of which
        may stall the event loop mid-traffic."""
        loop = asyncio.get_running_loop()
        while not self._stop.is_set():
            try:
                await asyncio.wait_for(
                    self._stop.wait(), timeout=self.interval_s
                )
                return
            except asyncio.TimeoutError:
                pass
            action = self._decide()
            if action is not None:
                await loop.run_in_executor(None, self._apply, action)

    def start(self) -> asyncio.Task:
        """Spawn the control loop on the running event loop."""
        if self._task is not None and not self._task.done():
            raise RuntimeError("autoscaler is already running")
        self._stop.clear()
        self._task = asyncio.get_running_loop().create_task(self.run())
        return self._task

    async def stop(self) -> None:
        """Signal the loop to exit and wait for it (any in-flight
        resize finishes first)."""
        self._stop.set()
        if self._task is not None:
            await self._task
            self._task = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready controller state for the ``/metrics`` endpoint."""
        return {
            "n_workers": int(self.pool.n_workers),
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "high_backlog_s": self.high_backlog_s,
            "low_backlog_s": self.low_backlog_s,
            "up_ticks": self.up_ticks,
            "down_ticks": self.down_ticks,
            "interval_s": self.interval_s,
            "n_ticks": int(self.n_ticks),
            "n_grows": int(self.n_grows),
            "n_shrinks": int(self.n_shrinks),
            "n_errors": int(self.n_errors),
            "last_backlog_s": float(self.last_backlog_s),
            "up_streak": int(self._up_streak),
            "down_streak": int(self._down_streak),
            "events": [
                [int(tick), str(action), int(workers)]
                for tick, action, workers in self.events
            ],
        }

    def __repr__(self) -> str:
        return (
            f"Autoscaler(workers={self.pool.n_workers} in "
            f"[{self.min_workers}, {self.max_workers}], "
            f"grows={self.n_grows}, shrinks={self.n_shrinks})"
        )
