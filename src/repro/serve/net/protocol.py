"""Minimal HTTP/1.1 wire protocol: parse requests, write responses.

Dependency-free by design — the serving stack must run wherever the
index runs, so the front-end speaks just enough HTTP/1.1 over plain
``asyncio`` streams for production load balancers, benchmark drivers
and ``curl`` to talk to it:

* request line + headers (``readuntil(b"\\r\\n\\r\\n")``, size-capped),
* ``Content-Length`` bodies (read whole or streamed in chunks —
  ``Transfer-Encoding: chunked`` is refused with ``501``),
* keep-alive connections (HTTP/1.1 default; ``Connection: close``
  honoured both ways),
* JSON responses with explicit ``Content-Length`` and optional
  ``Retry-After`` (the admission-control and load-shedding header),
* the ``application/x-ferex-batch`` binary frame codec (below) — raw
  little-endian array bytes behind a fixed header, the zero-copy
  alternative to per-component JSON numbers.

Binary frame layout (all fields little-endian)::

    offset  size  field
    0       4     magic   b"FXB1"
    4       2     version u16 (currently 1)
    6       1     kind    u8: 1 = array frame, 2 = result frame
    7       1     dtype   u8 code (array frames; result frames send 0)
    8       8     rows    u64
    16      8     cols    u64 (0 = the array is 1-D)
    24      4     k       u32 (requested k on requests, result k on
                          result frames)
    28      ...   payload: the contiguous C-order array bytes — array
                  frames carry one array; result frames carry int64
                  ids then float64 distances, both (rows, cols)

Every malformation — truncated header, bad magic, unknown version or
dtype code, payload bytes disagreeing with the header shape — raises a
typed :class:`HttpError` 400, never a hang or a 500.

Anything smarter — routing, validation, admission — lives in
:mod:`repro.serve.net.frontend`; this module knows only bytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import AsyncIterator, Dict, Optional, Sequence, Tuple

import numpy as np

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Hard cap on the request head (request line + headers).
MAX_HEAD_BYTES = 16 * 1024

#: The binary wire content type (requests and, via ``Accept``,
#: responses) on ``/v1/search_batch`` and ``/v1/add``.
BINARY_CONTENT_TYPE = "application/x-ferex-batch"
BINARY_MAGIC = b"FXB1"
BINARY_VERSION = 1
#: Frame kinds: one raw array / an (ids, distances) result pair.
FRAME_ARRAY = 1
FRAME_RESULT = 2
_FRAME = struct.Struct("<4sHBBQQI")
FRAME_HEADER_BYTES = _FRAME.size
#: Wire dtype codes.  Everything is explicit-little-endian (or
#: byte-order-free for the 1-byte types): a big-endian peer must swap
#: before packing, not negotiate.
DTYPE_BY_CODE = {
    1: "<i8",
    2: "<f8",
    3: "<i4",
    4: "<f4",
    5: "<i2",
    6: "<u2",
    7: "|i1",
    8: "|u1",
}
CODE_BY_DTYPE = {
    np.dtype(spec).str: code for code, spec in DTYPE_BY_CODE.items()
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status.

    ``retry_after_s`` (when set) is rendered as a ``Retry-After``
    header — the contract for 429/503 shedding responses: the client
    knows the rejection is about *load*, not about its request, and
    when to come back.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after_s = retry_after_s


class Request:
    """One parsed request head (the body stays on the stream)."""

    __slots__ = ("method", "path", "headers", "keep_alive", "body_consumed")

    def __init__(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        keep_alive: bool,
    ):
        self.method = method
        self.path = path
        #: Header names lower-cased; duplicate headers last-wins.
        self.headers = headers
        self.keep_alive = keep_alive
        #: Set once the whole Content-Length body has been read off the
        #: stream.  A keep-alive connection whose request errored with
        #: the body only partially consumed cannot be reused — the
        #: leftover bytes would parse as the next request's head — so
        #: the front-end closes it.
        self.body_consumed = False

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length: {raw!r}")
        if length < 0:
            raise HttpError(400, f"negative Content-Length: {length}")
        return length

    @property
    def content_type(self) -> str:
        # Parameters (charset=...) stripped: routing only needs the type.
        return self.headers.get("content-type", "").split(";")[0].strip()

    def __repr__(self) -> str:
        return f"Request({self.method} {self.path})"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request head off the stream.

    Returns ``None`` on a clean EOF between requests (the client hung
    up a keep-alive connection — not an error); raises
    :class:`HttpError` for anything malformed.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    try:
        lines = head[:-4].decode("latin-1").split("\r\n")
        method, path, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line: {head[:64]!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version: {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(
            501, "Transfer-Encoding is not supported; send Content-Length"
        )
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    # The path only — query strings and fragments are not part of this
    # API's routing surface.
    path = path.split("?", 1)[0].split("#", 1)[0]
    request = Request(method.upper(), path, headers, keep_alive)
    if headers.get("content-length", "0").strip() in ("", "0"):
        # Nothing on the stream to consume: a routing error answered
        # before any body read still leaves the connection reusable.
        request.body_consumed = True
    return request


async def read_body(
    reader: asyncio.StreamReader,
    request: Request,
    max_body_bytes: int,
) -> bytes:
    """Read the whole ``Content-Length`` body (size-capped)."""
    length = request.content_length
    if length > max_body_bytes:
        raise HttpError(
            413, f"body of {length} bytes exceeds the {max_body_bytes} cap"
        )
    if length == 0:
        request.body_consumed = True
        return b""
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HttpError(400, "body shorter than Content-Length")
    request.body_consumed = True
    return body


async def iter_body_lines(
    reader: asyncio.StreamReader,
    request: Request,
    max_body_bytes: int,
    chunk_bytes: int = 64 * 1024,
) -> AsyncIterator[bytes]:
    """Stream a ``Content-Length`` body line by line without buffering
    it whole — the transport for NDJSON bulk writes, where the body may
    be far larger than any single write chunk."""
    length = request.content_length
    if length > max_body_bytes:
        raise HttpError(
            413, f"body of {length} bytes exceeds the {max_body_bytes} cap"
        )
    remaining = length
    buffer = b""
    while remaining > 0:
        chunk = await reader.read(min(chunk_bytes, remaining))
        if not chunk:
            raise HttpError(400, "body shorter than Content-Length")
        remaining -= len(chunk)
        buffer += chunk
        *lines, buffer = buffer.split(b"\n")
        for line in lines:
            if line.strip():
                yield line
    request.body_consumed = True
    if buffer.strip():
        yield buffer


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> None:
    """Serialise one response onto the stream (no drain — the caller
    drains once per request)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body)


def json_body(payload: dict) -> bytes:
    """Encode a response payload.  ``allow_nan=False`` keeps the wire
    strict-JSON — non-finite values must be mapped (to ``null``) by the
    caller before they get here."""
    return json.dumps(payload, allow_nan=False).encode("utf-8")


def error_body(status: int, message: str) -> bytes:
    return json_body(
        {
            "error": STATUS_PHRASES.get(status, "Unknown"),
            "status": int(status),
            "message": str(message),
        }
    )


# ----------------------------------------------------------------------
# application/x-ferex-batch frame codec
# ----------------------------------------------------------------------
def pack_array_frame(array: np.ndarray, k: int = 0) -> bytes:
    """Encode one 1-D/2-D numpy array as a binary array frame.

    ``k`` rides the header so a search request is a single frame (the
    queries array + the requested neighbour count)."""
    array = np.ascontiguousarray(array)
    code = CODE_BY_DTYPE.get(array.dtype.str)
    if code is None:
        # Native-order dtypes on little-endian hosts already match the
        # "<" specs above; anything else (big-endian, bool, object)
        # must be converted by the caller.
        raise ValueError(
            f"dtype {array.dtype} is not wire-encodable; use one of "
            f"{sorted(DTYPE_BY_CODE.values())}"
        )
    if array.ndim == 1:
        rows, cols = array.shape[0], 0
    elif array.ndim == 2:
        rows, cols = array.shape
    else:
        raise ValueError(
            f"binary frames carry 1-D or 2-D arrays, got shape "
            f"{array.shape}"
        )
    header = _FRAME.pack(
        BINARY_MAGIC, BINARY_VERSION, FRAME_ARRAY, code, rows, cols, int(k)
    )
    return header + array.tobytes()


def pack_result_frame(ids: np.ndarray, distances: np.ndarray) -> bytes:
    """Encode one ``(ids, distances)`` search result as a result frame.

    Non-finite distances (the ``(-1, inf)`` padding) ride natively —
    no JSON ``null`` mapping on this path."""
    ids = np.ascontiguousarray(ids, dtype="<i8")
    distances = np.ascontiguousarray(distances, dtype="<f8")
    if ids.ndim != 2 or ids.shape != distances.shape:
        raise ValueError(
            f"result frames carry matching 2-D (n, k) arrays, got "
            f"{ids.shape} and {distances.shape}"
        )
    rows, k = ids.shape
    header = _FRAME.pack(
        BINARY_MAGIC, BINARY_VERSION, FRAME_RESULT, 0, rows, k, k
    )
    return header + ids.tobytes() + distances.tobytes()


def _unpack_header(body: bytes, expect_kind: int) -> Tuple[int, int, int, int]:
    if len(body) < FRAME_HEADER_BYTES:
        raise HttpError(
            400,
            f"binary frame truncated: {len(body)} bytes is shorter "
            f"than the {FRAME_HEADER_BYTES}-byte header",
        )
    magic, version, kind, code, rows, cols, k = _FRAME.unpack_from(body)
    if magic != BINARY_MAGIC:
        raise HttpError(
            400,
            f"bad binary frame magic {magic!r} (expected "
            f"{BINARY_MAGIC!r})",
        )
    if version != BINARY_VERSION:
        raise HttpError(
            400,
            f"unsupported binary frame version {version} (this server "
            f"speaks version {BINARY_VERSION})",
        )
    if kind != expect_kind:
        raise HttpError(
            400,
            f"expected a frame of kind {expect_kind}, got kind {kind}",
        )
    return code, rows, cols, k


def unpack_array_frame(body: bytes) -> Tuple[np.ndarray, int]:
    """Decode one array frame straight into numpy; returns
    ``(array, k)``.  The array is a zero-copy read-only view over the
    body bytes."""
    code, rows, cols, k = _unpack_header(body, FRAME_ARRAY)
    spec = DTYPE_BY_CODE.get(code)
    if spec is None:
        raise HttpError(
            400,
            f"unknown binary dtype code {code} (known: "
            f"{sorted(DTYPE_BY_CODE)})",
        )
    dtype = np.dtype(spec)
    count = rows * cols if cols else rows
    expected = count * dtype.itemsize
    payload = len(body) - FRAME_HEADER_BYTES
    if payload != expected:
        raise HttpError(
            400,
            f"binary frame carries {payload} payload bytes but its "
            f"header announces {rows}x{cols or 1} {dtype.name} = "
            f"{expected} bytes",
        )
    array = np.frombuffer(
        body, dtype=dtype, count=count, offset=FRAME_HEADER_BYTES
    )
    if cols:
        array = array.reshape(rows, cols)
    return array, int(k)


def unpack_result_frame(body: bytes) -> Tuple[np.ndarray, np.ndarray]:
    """Decode one result frame; returns copied ``(ids, distances)``
    (the caller usually outlives the response buffer)."""
    _, rows, cols, _ = _unpack_header(body, FRAME_RESULT)
    count = rows * cols
    expected = count * 16
    payload = len(body) - FRAME_HEADER_BYTES
    if payload != expected:
        raise HttpError(
            400,
            f"binary result frame carries {payload} payload bytes but "
            f"its header announces {rows}x{cols} id+distance pairs = "
            f"{expected} bytes",
        )
    ids = np.frombuffer(
        body, dtype="<i8", count=count, offset=FRAME_HEADER_BYTES
    ).reshape(rows, cols)
    distances = np.frombuffer(
        body,
        dtype="<f8",
        count=count,
        offset=FRAME_HEADER_BYTES + count * 8,
    ).reshape(rows, cols)
    return ids.copy(), distances.copy()
