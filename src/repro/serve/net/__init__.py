"""The network front-end: HTTP wire protocol and elastic serving over
:class:`repro.serve.FerexServer`.

* :class:`NetFrontend` — dependency-free asyncio HTTP/1.1 front-end:
  JSON search endpoints riding the request coalescer, streaming NDJSON
  bulk writes through the single-writer path, ``/healthz`` and
  ``/metrics``;
* :class:`AdmissionController` — bounded pending budget; overload is
  shed with ``429`` + ``Retry-After`` instead of queued without limit;
* :class:`Autoscaler` — grows/shrinks
  :class:`~repro.serve.procpool.ProcReplicaPool` workers from the
  coalescer queue-depth gauge and EWMA service time;
* :class:`HttpClient` — the matching minimal asyncio client (tests,
  benches, examples).
"""

from .admission import AdmissionController, AdmissionError
from .autoscaler import Autoscaler
from .client import HttpClient, Response
from .frontend import NetFrontend
from .protocol import (
    BINARY_CONTENT_TYPE,
    HttpError,
    pack_array_frame,
    pack_result_frame,
    unpack_array_frame,
    unpack_result_frame,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Autoscaler",
    "BINARY_CONTENT_TYPE",
    "HttpClient",
    "HttpError",
    "NetFrontend",
    "Response",
    "pack_array_frame",
    "pack_result_frame",
    "unpack_array_frame",
    "unpack_result_frame",
]
