"""The network front-end: HTTP wire protocol and elastic serving over
:class:`repro.serve.FerexServer`.

* :class:`NetFrontend` — dependency-free asyncio HTTP/1.1 front-end:
  JSON search endpoints riding the request coalescer, streaming NDJSON
  bulk writes through the single-writer path, ``/healthz`` and
  ``/metrics``;
* :class:`AdmissionController` — bounded pending budget; overload is
  shed with ``429`` + ``Retry-After`` instead of queued without limit;
* :class:`Autoscaler` — grows/shrinks
  :class:`~repro.serve.procpool.ProcReplicaPool` workers from the
  coalescer queue-depth gauge and EWMA service time;
* :class:`HttpClient` — the matching minimal asyncio client (tests,
  benches, examples).
"""

from .admission import AdmissionController, AdmissionError
from .autoscaler import Autoscaler
from .client import HttpClient, Response
from .frontend import NetFrontend
from .protocol import HttpError

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Autoscaler",
    "HttpClient",
    "HttpError",
    "NetFrontend",
    "Response",
]
