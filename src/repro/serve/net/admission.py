"""Admission control: a bounded pending budget with explicit shedding.

Under overload an unbounded server does not get slower gracefully — it
queues without limit, so *every* request's latency grows until clients
time out and retry, which queues more.  The fix is the classic one:
admit work up to a fixed in-flight budget and reject the rest
*immediately* with ``429 Too Many Requests`` + ``Retry-After``.
Rejected requests cost microseconds; admitted requests see a queue
whose depth — and therefore whose p99 — is bounded by construction.

:class:`AdmissionController` is the budget.  It is deliberately tiny
and event-loop confined (plain counters, no locks): every acquire and
release happens on the front-end's asyncio thread, mirroring the
serving layer's existing single-loop discipline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class AdmissionError(RuntimeError):
    """The pending budget is exhausted; shed this request.

    Mapped to ``429`` + ``Retry-After: retry_after_s`` on the wire.
    """

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class AdmissionController:
    """Bounded in-flight request budget for the read path.

    Parameters
    ----------
    max_pending:
        Hard cap on admitted-but-unfinished query rows.  A batched
        request admits one unit per row, so a 64-row batch cannot
        sneak past a budget a 64-request burst would have tripped.
    retry_after_s:
        The back-off hint attached to rejections (the ``Retry-After``
        header, in seconds).  A small constant works well: by the time
        a shed client returns, the bounded queue has drained some
        multiple of a batch.
    """

    def __init__(self, max_pending: int = 256, retry_after_s: float = 0.05):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")
        self.max_pending = int(max_pending)
        self.retry_after_s = float(retry_after_s)
        self._pending = 0
        self.peak_pending = 0
        self.n_admitted = 0
        self.n_rejected = 0

    @property
    def pending(self) -> int:
        """Admitted query rows not yet completed."""
        return self._pending

    def try_acquire(self, n: int = 1) -> None:
        """Admit ``n`` rows or raise :class:`AdmissionError`.

        All-or-nothing for batches: partial admission would serve a
        client a ragged answer, which is worse than a clean 429.
        """
        if n < 1:
            raise ValueError("try_acquire() needs n >= 1")
        if self._pending + n > self.max_pending:
            self.n_rejected += n
            raise AdmissionError(
                f"pending budget exhausted ({self._pending}/"
                f"{self.max_pending} in flight, {n} more requested)",
                retry_after_s=self.retry_after_s,
            )
        self._pending += n
        self.n_admitted += n
        self.peak_pending = max(self.peak_pending, self._pending)

    def release(self, n: int = 1) -> None:
        if n < 1:
            raise ValueError("release() needs n >= 1")
        if n > self._pending:
            raise RuntimeError(
                f"release({n}) exceeds the {self._pending} rows admitted"
            )
        self._pending -= n

    @contextmanager
    def admit(self, n: int = 1) -> Iterator[None]:
        """``with admission.admit(rows):`` — acquire on entry, always
        release on exit (success, shed downstream, or error)."""
        self.try_acquire(n)
        try:
            yield
        finally:
            self.release(n)

    def snapshot(self) -> dict:
        """JSON-ready budget state for the ``/metrics`` endpoint."""
        return {
            "max_pending": int(self.max_pending),
            "pending": int(self._pending),
            "peak_pending": int(self.peak_pending),
            "n_admitted": int(self.n_admitted),
            "n_rejected": int(self.n_rejected),
            "retry_after_s": float(self.retry_after_s),
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(pending={self._pending}/"
            f"{self.max_pending}, rejected={self.n_rejected})"
        )
