"""`NetFrontend`: the HTTP wire over :class:`repro.serve.FerexServer`.

The serving story so far ends at an in-process asyncio facade; this
module is where traffic from outside the process comes in.  One
front-end owns one listening socket and speaks the JSON API below;
every connection is one asyncio task, so concurrent wire requests land
on the server concurrently — and therefore coalesce into the same
micro-batches in-process callers would have formed.

Endpoints
---------
``POST /v1/search``
    ``{"query": [...], "k": 3, "deadline_ms": 50}`` →
    ``{"ids": [...], "distances": [...]}``.  Bit-identical to
    ``FerexIndex.search(query[None], k)``.
``POST /v1/search_batch``
    ``{"queries": [[...], ...], "k": 3}`` → stacked rows.  Each row
    rides the coalescer independently, so one wire batch micro-batches
    with every other request in flight.  Also speaks the binary
    ``application/x-ferex-batch`` content type (one array frame in;
    ``Accept: application/x-ferex-batch`` gets a result frame back) —
    raw little-endian array bytes instead of per-component JSON; see
    :mod:`repro.serve.net.protocol` for the frame layout.
``POST /v1/add`` / ``POST /v1/remove``
    Bulk writes through the single-writer path.  JSON bodies
    (``{"vectors": [[...]]}`` / ``{"ids": [...]}``) or streaming
    NDJSON (``application/x-ndjson``, one ``{"vector": [...]}`` /
    ``{"id": ...}`` object per line) applied chunk-by-chunk as the
    body arrives — a bulk load larger than memory never buffers whole.
    ``/v1/add`` additionally accepts a binary array frame
    (``application/x-ferex-batch``) and mirrors the assigned ids as a
    frame under the same ``Accept``.
``POST /v1/compact`` / ``POST /v1/reconfigure``
    Maintenance writes; reconfigure takes ``{"bits":, "metric":,
    "banks":}`` and re-voltages online, under live wire traffic — or
    ``{"top_p":, "n_clusters":}`` to move the routed backend's probe
    width / cluster count (one kind per request).
``GET /healthz``
    Liveness + replica/pool integrity (``503`` once the fleet is
    poisoned or the server closed).
``GET /metrics``
    One JSON document: the :class:`~repro.serve.stats.ServerStats`
    snapshot (its ``cache`` section carries both lifetime and
    windowed — since-last-invalidation — hit accounting plus the
    admission-policy state: window/main occupancy, admission
    rejections and sketch resets under W-TinyLFU), wire counters,
    admission budget, autoscaler state, pool state.  Plain
    ints/floats throughout — ``json.dumps`` clean.

Overload behaviour (admission + deadlines) is the point of the layer:
requests beyond the pending budget are shed instantly with ``429`` +
``Retry-After``; admitted requests whose deadline expires while queued
are rejected with ``503`` + ``Retry-After`` *before* dispatch (the
coalescer drops them at flush).  Under any sustained overload the
queue — and with it served p99 — stays bounded.

Non-finite distances (the ``(-1, inf)`` padding rows served when ``k``
exceeds the live row count) cross the wire as ``null``: the API emits
strict JSON that any client stack parses.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import Counter
from contextlib import nullcontext
from typing import Optional, Tuple

import numpy as np

from ...core.engine import NotProgrammedError
from ..coalescer import DeadlineExceededError
from ..procpool import PoolBrokenError
from ..router import ReplicaParityError
from ..server import FerexServer
from .admission import AdmissionController, AdmissionError
from .autoscaler import Autoscaler
from .protocol import (
    BINARY_CONTENT_TYPE,
    HttpError,
    Request,
    error_body,
    iter_body_lines,
    json_body,
    pack_array_frame,
    pack_result_frame,
    read_body,
    read_request,
    unpack_array_frame,
    write_response,
)

#: Retry-After attached to 503 shedding responses (deadline expiry,
#: poisoned fleet) when no admission controller supplies one.
_DEFAULT_RETRY_AFTER_S = 0.05


def _wire_distances(distances: np.ndarray) -> list:
    """Distances as strict-JSON floats, non-finite rows as ``None``."""
    return [
        float(d) if math.isfinite(d) else None for d in distances.tolist()
    ]


class NetFrontend:
    """Serve :class:`FerexServer` over HTTP/1.1.

    Parameters
    ----------
    server:
        The in-process serving facade.  The front-end does not own it:
        closing the front-end stops the wire (and the autoscaler) but
        leaves the server serving in-process callers.
    host / port:
        Bind address; port ``0`` picks a free port (see
        :attr:`bound_port` after :meth:`start`).
    admission:
        Optional :class:`AdmissionController`; without one, nothing is
        shed and overload queues unboundedly (fine for trusted
        in-process benches, wrong for a real wire).
    autoscaler:
        Optional :class:`Autoscaler`; its control loop is started and
        stopped with the front-end.
    default_deadline_ms:
        Deadline applied to read requests that do not send their own
        ``deadline_ms``; a client deadline below the default wins.
        ``None`` = no implicit deadline.
    max_body_bytes:
        Request-body cap (``413`` beyond it) — for both buffered JSON
        and streamed NDJSON bodies.
    write_chunk_rows:
        NDJSON streaming writes are applied to the index every this
        many rows.
    """

    def __init__(
        self,
        server: FerexServer,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
        autoscaler: Optional[Autoscaler] = None,
        default_deadline_ms: Optional[float] = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        write_chunk_rows: int = 256,
    ):
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0")
        if write_chunk_rows < 1:
            raise ValueError("write_chunk_rows must be >= 1")
        self._server = server
        self._host = host
        self._port = port
        self.admission = admission
        self.autoscaler = autoscaler
        self.default_deadline_ms = default_deadline_ms
        self.max_body_bytes = int(max_body_bytes)
        self.write_chunk_rows = int(write_chunk_rows)
        self._listener: Optional[asyncio.AbstractServer] = None
        self._autoscaler_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        # Wire counters — event-loop confined, like ServerStats.
        self.n_connections = 0
        self.n_requests = 0
        self.n_shed_429 = 0
        self.n_shed_503 = 0
        #: Request/response body bytes moved over the wire (heads not
        #: counted — the payload traffic is what capacity planning
        #: needs).
        self.bytes_in = 0
        self.bytes_out = 0
        self.status_counts: Counter = Counter()
        self.path_counts: Counter = Counter()
        self._routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/v1/search"): self._handle_search,
            ("POST", "/v1/search_batch"): self._handle_search_batch,
            ("POST", "/v1/add"): self._handle_add,
            ("POST", "/v1/remove"): self._handle_remove,
            ("POST", "/v1/compact"): self._handle_compact,
            ("POST", "/v1/reconfigure"): self._handle_reconfigure,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the socket (and start the autoscaler loop); returns the
        bound ``(host, port)``."""
        if self._listener is not None:
            raise RuntimeError("front-end is already started")
        self._listener = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._listener.sockets[0].getsockname()[1]
        if self.autoscaler is not None:
            self._autoscaler_task = self.autoscaler.start()
        return self._host, self._port

    @property
    def bound_port(self) -> int:
        if self._listener is None:
            raise RuntimeError("front-end is not started")
        return self._port

    @property
    def server(self) -> FerexServer:
        return self._server

    async def close(self) -> None:
        """Stop accepting, close the listener, stop the autoscaler.
        The underlying :class:`FerexServer` stays open (the caller owns
        it)."""
        if self.autoscaler is not None and self._autoscaler_task is not None:
            await self.autoscaler.stop()
            self._autoscaler_task = None
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        # Idle keep-alive connections would otherwise linger (and show
        # up as cancelled-task noise at loop teardown): cancel and
        # drain them.  In-flight requests are cut — close() is
        # shutdown, not drain; the FerexServer's own close() drains.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )

    async def __aenter__(self) -> "NetFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.n_connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    self._respond_error(writer, exc, keep_alive=False)
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = request.keep_alive
                self.n_requests += 1
                self.path_counts[request.path] += 1
                try:
                    handler = self._routes.get(
                        (request.method, request.path)
                    )
                    if handler is None:
                        known_paths = {
                            path for _, path in self._routes
                        }
                        if request.path in known_paths:
                            raise HttpError(
                                405,
                                f"{request.method} not allowed on "
                                f"{request.path}",
                            )
                        raise HttpError(404, f"no route {request.path}")
                    result = await handler(request, reader)
                    if len(result) == 3:
                        # Binary-capable handlers return the encoded
                        # body + content type themselves.
                        status, body, content_type = result
                    else:
                        status, payload = result
                        body = json_body(payload)
                        content_type = "application/json"
                    self.status_counts[status] += 1
                    self.bytes_out += len(body)
                    write_response(
                        writer,
                        status,
                        body,
                        content_type=content_type,
                        keep_alive=keep_alive,
                    )
                except HttpError as exc:
                    # A half-read body would parse as the next
                    # request's head; such connections cannot survive
                    # the error.
                    keep_alive = keep_alive and request.body_consumed
                    self._respond_error(writer, exc, keep_alive)
                except Exception as exc:
                    keep_alive = keep_alive and request.body_consumed
                    self._respond_error(
                        writer, self._classify(exc), keep_alive
                    )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # The peer vanished mid-exchange; nothing to answer.
            return
        except asyncio.CancelledError:
            # close() is tearing the front-end down; end the handler
            # cleanly (a task left in the cancelled state trips noisy
            # exception callbacks inside asyncio streams).
            return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _classify(self, exc: Exception) -> HttpError:
        """Map serving-layer exceptions onto wire statuses."""
        if isinstance(exc, AdmissionError):
            return HttpError(
                429, str(exc), retry_after_s=exc.retry_after_s
            )
        if isinstance(exc, DeadlineExceededError):
            return HttpError(
                503, str(exc), retry_after_s=self._retry_after_s()
            )
        if isinstance(exc, (PoolBrokenError, ReplicaParityError)):
            return HttpError(
                503, str(exc), retry_after_s=self._retry_after_s()
            )
        if isinstance(exc, RuntimeError) and "closed" in str(exc):
            return HttpError(503, str(exc))
        if isinstance(exc, NotProgrammedError):
            return HttpError(409, str(exc))
        if isinstance(exc, (ValueError, TypeError, KeyError)):
            return HttpError(400, str(exc))
        return HttpError(500, f"{type(exc).__name__}: {exc}")

    def _retry_after_s(self) -> float:
        if self.admission is not None:
            return self.admission.retry_after_s
        return _DEFAULT_RETRY_AFTER_S

    def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        exc: HttpError,
        keep_alive: bool,
    ) -> None:
        if exc.status == 429:
            self.n_shed_429 += 1
        elif exc.status == 503:
            self.n_shed_503 += 1
        self.status_counts[exc.status] += 1
        extra = []
        if exc.retry_after_s is not None:
            # Fractional seconds: the spec's integer-seconds field is
            # too coarse for sub-second micro-batch drains.
            extra.append(("Retry-After", f"{exc.retry_after_s:.3f}"))
        body = error_body(exc.status, exc.message)
        self.bytes_out += len(body)
        write_response(
            writer,
            exc.status,
            body,
            keep_alive=keep_alive,
            extra_headers=extra,
        )

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    async def _read_raw(self, request: Request, reader) -> bytes:
        body = await read_body(reader, request, self.max_body_bytes)
        self.bytes_in += len(body)
        return body

    async def _read_json(self, request: Request, reader) -> dict:
        body = await self._read_raw(request, reader)
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"malformed JSON body: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload

    def _deadline(self, payload: dict, request: Request) -> Optional[float]:
        """Resolve the effective absolute deadline (loop time): the
        tighter of the client's ``deadline_ms`` (body field or
        ``X-Deadline-Ms`` header) and the configured default."""
        raw = payload.get("deadline_ms")
        if raw is None:
            raw = request.headers.get("x-deadline-ms")
        client_ms: Optional[float] = None
        if raw is not None:
            try:
                client_ms = float(raw)
            except (TypeError, ValueError):
                raise HttpError(400, f"malformed deadline_ms: {raw!r}")
            if client_ms <= 0:
                raise HttpError(400, "deadline_ms must be > 0")
        budgets = [
            ms
            for ms in (client_ms, self.default_deadline_ms)
            if ms is not None
        ]
        if not budgets:
            return None
        return asyncio.get_running_loop().time() + min(budgets) / 1000.0

    @staticmethod
    def _parse_k(payload: dict) -> int:
        k = payload.get("k", 1)
        if not isinstance(k, int) or isinstance(k, bool):
            raise HttpError(400, f"k must be an integer, got {k!r}")
        return k

    def _admit(self, rows: int):
        if self.admission is None:
            return nullcontext()
        return self.admission.admit(rows)

    @staticmethod
    def _wants_binary(request: Request) -> bool:
        """Response format is the client's ``Accept`` choice —
        independent of the request body's own content type."""
        return BINARY_CONTENT_TYPE in request.headers.get("accept", "")

    async def _read_binary_2d(
        self, request: Request, reader, what: str
    ) -> Tuple[np.ndarray, int]:
        """Read and decode one binary array frame that must be 2-D."""
        body = await self._read_raw(request, reader)
        array, k = unpack_array_frame(body)
        if array.ndim != 2:
            raise HttpError(
                400,
                f"binary {what} frame must carry a 2-D array "
                f"(cols > 0), got shape {array.shape}",
            )
        return array, k

    # ------------------------------------------------------------------
    # Read endpoints
    # ------------------------------------------------------------------
    async def _handle_search(self, request: Request, reader):
        payload = await self._read_json(request, reader)
        if "query" not in payload:
            raise HttpError(400, "body must carry 'query'")
        k = self._parse_k(payload)
        deadline = self._deadline(payload, request)
        query = np.asarray(payload["query"])
        with self._admit(1):
            outcome = await self._server.search(
                query, k=k, deadline=deadline
            )
        return 200, {
            "ids": [int(i) for i in outcome.ids.tolist()],
            "distances": _wire_distances(outcome.distances),
        }

    async def _handle_search_batch(self, request: Request, reader):
        if request.content_type == BINARY_CONTENT_TYPE:
            queries, k = await self._read_binary_2d(
                request, reader, "search_batch"
            )
            if k < 1:
                raise HttpError(
                    400, f"binary frame k must be >= 1, got {k}"
                )
            deadline = self._deadline({}, request)
        else:
            payload = await self._read_json(request, reader)
            if "queries" not in payload:
                raise HttpError(400, "body must carry 'queries'")
            k = self._parse_k(payload)
            deadline = self._deadline(payload, request)
            queries = np.asarray(payload["queries"])
            if queries.ndim != 2:
                raise HttpError(
                    400,
                    f"queries must be a 2-D array, got {queries.shape}",
                )
        with self._admit(max(len(queries), 1)):
            outcome = await self._server.search_many(
                queries, k=k, deadline=deadline
            )
        if self._wants_binary(request):
            return (
                200,
                pack_result_frame(outcome.ids, outcome.distances),
                BINARY_CONTENT_TYPE,
            )
        return 200, {
            "ids": [[int(i) for i in row] for row in outcome.ids.tolist()],
            "distances": [
                _wire_distances(row) for row in outcome.distances
            ],
            "n": int(len(queries)),
        }

    # ------------------------------------------------------------------
    # Write endpoints (single-writer path, optionally streamed)
    # ------------------------------------------------------------------
    async def _handle_add(self, request: Request, reader):
        if request.content_type == "application/x-ndjson":
            return await self._streamed_add(request, reader)
        if request.content_type == BINARY_CONTENT_TYPE:
            vectors, _ = await self._read_binary_2d(
                request, reader, "add"
            )
            assigned = await self._server.add(vectors)
        else:
            payload = await self._read_json(request, reader)
            if "vectors" not in payload:
                raise HttpError(400, "body must carry 'vectors'")
            ids = payload.get("ids")
            assigned = await self._server.add(
                np.asarray(payload["vectors"]), ids=ids
            )
        if self._wants_binary(request):
            return (
                200,
                pack_array_frame(
                    np.ascontiguousarray(assigned, dtype="<i8")
                ),
                BINARY_CONTENT_TYPE,
            )
        return 200, {
            "ids": [int(i) for i in assigned.tolist()],
            "count": int(len(assigned)),
        }

    async def _streamed_add(self, request: Request, reader):
        """NDJSON bulk load: rows are applied through the single-writer
        path every ``write_chunk_rows`` lines, while the body is still
        arriving.  Chunks already applied stay applied if a later line
        is malformed — the response's ``count`` always tells the truth
        about what landed."""
        rows: list = []
        row_ids: list = []
        assigned: list = []
        has_ids: Optional[bool] = None

        async def flush():
            if not rows:
                return
            new_ids = await self._server.add(
                np.asarray(rows), ids=(row_ids if has_ids else None)
            )
            assigned.extend(int(i) for i in new_ids.tolist())
            rows.clear()
            row_ids.clear()

        async for line in iter_body_lines(
            reader, request, self.max_body_bytes
        ):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HttpError(
                    400,
                    f"malformed NDJSON line after {len(assigned)} "
                    f"applied rows: {exc}",
                )
            if not isinstance(obj, dict) or "vector" not in obj:
                raise HttpError(
                    400, "each NDJSON line must be {'vector': [...]}"
                )
            line_has_id = "id" in obj
            if has_ids is None:
                has_ids = line_has_id
            elif has_ids != line_has_id:
                raise HttpError(
                    400,
                    "NDJSON stream mixes rows with and without 'id'",
                )
            rows.append(obj["vector"])
            if has_ids:
                row_ids.append(obj["id"])
            if len(rows) >= self.write_chunk_rows:
                await flush()
        await flush()
        self.bytes_in += request.content_length
        return 200, {"ids": assigned, "count": len(assigned)}

    async def _handle_remove(self, request: Request, reader):
        if request.content_type == "application/x-ndjson":
            return await self._streamed_remove(request, reader)
        payload = await self._read_json(request, reader)
        if "ids" not in payload:
            raise HttpError(400, "body must carry 'ids'")
        removed = await self._server.remove(payload["ids"])
        return 200, {"removed": int(removed)}

    async def _streamed_remove(self, request: Request, reader):
        ids: list = []
        removed = 0

        async def flush():
            nonlocal removed
            if not ids:
                return
            removed += int(await self._server.remove(list(ids)))
            ids.clear()

        async for line in iter_body_lines(
            reader, request, self.max_body_bytes
        ):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HttpError(
                    400,
                    f"malformed NDJSON line after {removed} removed: "
                    f"{exc}",
                )
            if not isinstance(obj, dict) or "id" not in obj:
                raise HttpError(
                    400, "each NDJSON line must be {'id': ...}"
                )
            ids.append(obj["id"])
            if len(ids) >= self.write_chunk_rows:
                await flush()
        await flush()
        self.bytes_in += request.content_length
        return 200, {"removed": removed}

    async def _handle_compact(self, request: Request, reader):
        await self._read_json(request, reader)  # drain (empty) body
        await self._server.compact()
        return 200, {"ok": True}

    async def _handle_reconfigure(self, request: Request, reader):
        payload = await self._read_json(request, reader)
        bits = payload.get("bits")
        metric = payload.get("metric")
        banks = payload.get("banks")
        top_p = payload.get("top_p")
        n_clusters = payload.get("n_clusters")
        voltage = (bits, metric, banks) != (None, None, None)
        routing = (top_p, n_clusters) != (None, None)
        if not voltage and not routing:
            raise HttpError(
                400,
                "body must carry at least one of bits/metric/banks "
                "(voltage) or top_p/n_clusters (routing)",
            )
        if voltage and routing:
            raise HttpError(
                400,
                "voltage (bits/metric/banks) and routing "
                "(top_p/n_clusters) reconfigures are separate write "
                "transactions; send two requests",
            )
        if routing:
            await self._server.reconfigure_routing(
                top_p=top_p, n_clusters=n_clusters
            )
        else:
            await self._server.reconfigure(
                bits=bits, metric=metric, banks=banks
            )
        return 200, {
            "ok": True,
            "write_generation": int(self._server.write_generation),
        }

    # ------------------------------------------------------------------
    # Health + metrics
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request, reader):
        await self._read_json(request, reader)
        server = self._server
        problems = []
        if server.router.poisoned:
            problems.append("replica fleet is poisoned")
        pool = server.pool
        if pool is not None and pool.broken:
            problems.append("process pool is broken")
        if problems:
            raise HttpError(
                503, "; ".join(problems), retry_after_s=None
            )
        payload = {
            "status": "ok",
            "write_generation": int(server.write_generation),
            "n_replicas": int(server.n_replicas),
        }
        if pool is not None:
            payload["pool_workers"] = int(pool.n_workers)
        return 200, payload

    async def _handle_metrics(self, request: Request, reader):
        await self._read_json(request, reader)
        payload = {
            "server": self._server.stats.snapshot(),
            "net": self.snapshot(),
        }
        if self.admission is not None:
            payload["admission"] = self.admission.snapshot()
        if self.autoscaler is not None:
            payload["autoscaler"] = self.autoscaler.snapshot()
        if self._server.pool is not None:
            payload["pool"] = {
                key: value
                if not isinstance(value, list)
                else [int(v) for v in value]
                for key, value in self._server.pool.snapshot().items()
            }
        return 200, payload

    def snapshot(self) -> dict:
        """JSON-ready wire counters (one section of ``/metrics``)."""
        return {
            "n_connections": int(self.n_connections),
            "n_requests": int(self.n_requests),
            "n_shed_429": int(self.n_shed_429),
            "n_shed_503": int(self.n_shed_503),
            "bytes_in": int(self.bytes_in),
            "bytes_out": int(self.bytes_out),
            "status_counts": {
                str(int(status)): int(count)
                for status, count in sorted(self.status_counts.items())
            },
            "path_counts": {
                str(path): int(count)
                for path, count in sorted(self.path_counts.items())
            },
        }

    def __repr__(self) -> str:
        bound = self._port if self._listener is not None else "unbound"
        shed = self.n_shed_429 + self.n_shed_503
        return (
            f"NetFrontend({self._host}:{bound}, "
            f"requests={self.n_requests}, shed={shed})"
        )
