"""A minimal asyncio HTTP/1.1 client for the FeReX wire API.

The test-suite, benchmark driver and examples all need to talk to
:class:`~repro.serve.net.frontend.NetFrontend` from inside the same
event loop the front-end runs on — a blocking client (urllib) would
deadlock, and an external dependency is off the table.  This client
speaks exactly the subset the front-end serves: keep-alive HTTP/1.1,
``Content-Length`` bodies, JSON in and out.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .protocol import (
    BINARY_CONTENT_TYPE,
    HttpError,
    pack_array_frame,
    unpack_array_frame,
    unpack_result_frame,
)


class Response:
    """One parsed response: status, headers, decoded JSON (or bytes)."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def retry_after_s(self) -> Optional[float]:
        raw = self.headers.get("retry-after")
        return None if raw is None else float(raw)

    def __repr__(self) -> str:
        return f"Response(status={self.status}, bytes={len(self.body)})"


class HttpClient:
    """One keep-alive connection to the front-end.

    Usage::

        client = await HttpClient.connect(host, port)
        response = await client.request(
            "POST", "/v1/search", json_body={"query": [...], "k": 3}
        )
        await client.close()

    Requests on one client are serialised (HTTP/1.1 without
    pipelining); open one client per concurrent in-flight request —
    which is exactly how the bench models N closed-loop clients.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        host: str,
        port: int,
    ):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port

    @classmethod
    async def connect(cls, host: str, port: int) -> "HttpClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host, port)

    async def request(
        self,
        method: str,
        path: str,
        json_body: Optional[dict] = None,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        headers: Sequence[Tuple[str, str]] = (),
    ) -> Response:
        """Send one request and read its response."""
        if json_body is not None:
            if body is not None:
                raise ValueError("pass json_body or body, not both")
            body = json.dumps(json_body).encode("utf-8")
        body = body or b""
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            f"Content-Length: {len(body)}",
        ]
        if body:
            head.append(f"Content-Type: {content_type}")
        head.extend(f"{name}: {value}" for name, value in headers)
        self._writer.write(
            "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body
        )
        await self._writer.drain()
        return await self._read_response()

    # ------------------------------------------------------------------
    # Binary fast path (application/x-ferex-batch)
    # ------------------------------------------------------------------
    @staticmethod
    def _raise_for_status(response: Response) -> None:
        try:
            message = response.json()["message"]
        except Exception:
            message = response.body.decode("utf-8", "replace")
        raise HttpError(response.status, message)

    async def search_batch_binary(
        self,
        queries,
        k: int = 1,
        deadline_ms: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``POST /v1/search_batch`` as one binary frame each way;
        returns ``(ids, distances)`` numpy arrays.  Raises
        :class:`HttpError` on any non-200 answer (sheds included)."""
        frame = pack_array_frame(np.ascontiguousarray(queries), k=int(k))
        headers = [("Accept", BINARY_CONTENT_TYPE)]
        if deadline_ms is not None:
            headers.append(("X-Deadline-Ms", f"{deadline_ms:g}"))
        response = await self.request(
            "POST",
            "/v1/search_batch",
            body=frame,
            content_type=BINARY_CONTENT_TYPE,
            headers=headers,
        )
        if response.status != 200:
            self._raise_for_status(response)
        return unpack_result_frame(response.body)

    async def add_binary(self, vectors) -> np.ndarray:
        """``POST /v1/add`` as one binary frame; returns the assigned
        ids array."""
        frame = pack_array_frame(np.ascontiguousarray(vectors))
        response = await self.request(
            "POST",
            "/v1/add",
            body=frame,
            content_type=BINARY_CONTENT_TYPE,
            headers=[("Accept", BINARY_CONTENT_TYPE)],
        )
        if response.status != 200:
            self._raise_for_status(response)
        ids, _ = unpack_array_frame(response.body)
        return ids

    async def _read_response(self) -> Response:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head[:-4].decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        response_headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return Response(status, response_headers, body)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "HttpClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
