"""Async request coalescing: many concurrent searches, few dispatches.

FeReX earns its throughput by amortising one array evaluation over many
queries (the ~50x batch-over-serial win measured in
``benchmarks/bench_batch_throughput.py``).  A serving process only sees
that win if concurrent single-query callers are *coalesced* into
micro-batches before they reach the index — which is exactly what
:class:`RequestCoalescer` does:

* a submitted request parks in the pending queue;
* the queue flushes when it reaches ``max_batch_size`` **or**
  ``max_wait_ms`` after its first request arrived, whichever is first;
* a flush groups pending requests by ``k`` (the index's batch entry
  point takes one ``k`` per call) and dispatches each group through the
  supplied async ``dispatch`` callable in arrival order;
* each caller's future resolves with its own ``(ids, distances)`` row.

Because the index's batch path is bit-identical to its serial path by
construction, coalescing changes *when* a query is evaluated but never
*what* it returns.

Cancellation discipline: a caller that abandons its request (e.g. via
``asyncio.wait_for``) before the flush is silently dropped from the
batch; one cancelled after dispatch simply never receives the result.
Other requests in the same micro-batch are unaffected either way.

Adaptive wait
-------------
A fixed ``max_wait_ms`` taxes sparse traffic: a lone caller always eats
the full window even though nobody will ever join its batch.  With
``adaptive_wait=True`` the coalescer sizes each window from the EWMAs
of two signals it observes anyway:

* the **inter-arrival gap** between ``submit`` calls, and
* the **dispatch service time** of recent batches.

Waiting only pays when another request is expected before the current
one would have been served solo — i.e. when the arrival gap undercuts
the service time.  The scheduled window is therefore::

    wait = 0                                  if ewma_gap >= ewma_service
    wait = min(max_wait_ms, gain * ewma_gap)  otherwise

always clamped to ``[0, max_wait_ms]`` — the configured ceiling is a
hard upper bound no arrival pattern can push past.  Under concurrency-1
traffic the gap (which *includes* any wait we add, so the loop is
self-stabilising) sits above the service time and the window collapses
to zero: a singleton request arriving to an empty queue then bypasses
the timer entirely and dispatches inline, at near-direct-search
latency.  Under a 64-client burst the gaps are microseconds, the window
opens, and batches keep filling exactly as with a fixed wait.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Awaitable, Callable, List, Optional, Tuple

import numpy as np

#: Async dispatch: (queries (n, dims), k) -> (ids (n, k), distances).
DispatchFn = Callable[
    [np.ndarray, int], Awaitable[Tuple[np.ndarray, np.ndarray]]
]


class DeadlineExceededError(TimeoutError):
    """A request's deadline expired while it was parked in the pending
    queue: it was rejected at flush time instead of being dispatched.

    The wire front-end maps this to ``503`` + ``Retry-After`` — under
    overload, queue time (not service time) is what grows without
    bound, so rejecting stale requests before they reach the array is
    what keeps served p99 bounded.
    """


class _Pending:
    """One parked request: query row, k, deadline, caller's future."""

    __slots__ = ("query", "k", "future", "deadline")

    def __init__(
        self,
        query: np.ndarray,
        k: int,
        future: asyncio.Future,
        deadline: Optional[float] = None,
    ):
        self.query = query
        self.k = k
        self.future = future
        #: Absolute event-loop time after which the request must not be
        #: dispatched (None = no deadline).
        self.deadline = deadline


class RequestCoalescer:
    """Collects concurrent ``submit`` calls into micro-batches.

    Parameters
    ----------
    dispatch:
        Async callable evaluating one micro-batch.  Exceptions it
        raises propagate to every caller in that batch.
    max_batch_size:
        Flush immediately once this many requests are pending.
    max_wait_ms:
        Flush at latest this long after the oldest pending request
        arrived; ``0`` flushes on the next event-loop tick (pure
        opportunistic batching, no added latency).
    on_batch:
        Optional observer called with each successfully served batch
        size (the server wires :meth:`ServerStats.record_batch` here).
    adaptive_wait:
        Size each flush window from the arrival/service EWMAs (see the
        module docstring) instead of always waiting ``max_wait_ms``.
        The configured ``max_wait_ms`` stays the hard ceiling.
    inline_dispatch:
        Optional dispatch variant used *only* for the adaptive
        singleton fast path (a request confirmed alone under sparse
        traffic).  The server passes a loop-blocking direct search
        here — acceptable exactly because nothing else is in flight —
        while timer- and size-triggered batches (including a lone-k
        group inside a concurrent burst) keep the off-loop ``dispatch``.
        Defaults to ``dispatch``.
    ewma_alpha:
        EWMA smoothing factor in ``(0, 1]`` for both signals (higher =
        faster adaptation, noisier estimate).
    wait_gain:
        Multiple of the arrival-gap EWMA used as the window when
        waiting is worthwhile.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        on_batch: Optional[Callable[[int], None]] = None,
        adaptive_wait: bool = False,
        ewma_alpha: float = 0.25,
        wait_gain: float = 8.0,
        inline_dispatch: Optional[DispatchFn] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if wait_gain <= 0:
            raise ValueError("wait_gain must be > 0")
        self._dispatch = dispatch
        self._inline_dispatch = inline_dispatch or dispatch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self._on_batch = on_batch
        self.adaptive_wait = adaptive_wait
        self._ewma_alpha = ewma_alpha
        self._wait_gain = wait_gain
        #: EWMA of submit inter-arrival gaps (seconds; None = no data).
        self._ewma_gap: Optional[float] = None
        #: EWMA of batch dispatch durations (seconds; None = no data).
        self._ewma_service: Optional[float] = None
        self._last_arrival: Optional[float] = None
        #: Recent scheduled windows (seconds) — every value is in
        #: ``[0, max_wait_s]`` by construction; tests and stats
        #: surfaces read this to audit the adaptive policy.
        self.scheduled_waits: deque = deque(maxlen=256)
        self._pending: List[_Pending] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._inflight: set = set()
        #: Singleton fast-path batches awaited inline (no task object
        #: to gather), counted so close() can drain them too.
        self._inline_inflight = 0
        self._inline_drained = asyncio.Event()
        self._inline_drained.set()
        #: Requests rejected at flush time because their deadline had
        #: already expired while parked (never dispatched).
        self.n_deadline_drops = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Requests parked and not yet dispatched."""
        return len(self._pending)

    @property
    def ewma_service_s(self) -> Optional[float]:
        """EWMA of batch dispatch durations in seconds (``None`` until
        the first batch is served) — the service-time half of the
        autoscaling signal."""
        return self._ewma_service

    @property
    def ewma_gap_s(self) -> Optional[float]:
        """EWMA of submit inter-arrival gaps in seconds (``None``
        before the second submit)."""
        return self._ewma_gap

    def _observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            # Cap the sample: beyond "no batch-mate is coming" the gap
            # magnitude is meaningless, and one long idle period must
            # not dominate the EWMA for many requests afterwards.
            gap = min(now - self._last_arrival, 1.0)
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                alpha = self._ewma_alpha
                self._ewma_gap = alpha * gap + (1 - alpha) * self._ewma_gap
        self._last_arrival = now

    def _observe_service(self, duration: float) -> None:
        if self._ewma_service is None:
            self._ewma_service = duration
        else:
            alpha = self._ewma_alpha
            self._ewma_service = (
                alpha * duration + (1 - alpha) * self._ewma_service
            )

    def next_wait_s(self) -> float:
        """The flush window the next empty-queue arrival would get,
        always within ``[0, max_wait_s]``."""
        if not self.adaptive_wait or self._ewma_gap is None:
            return self.max_wait_s
        # Until a batch has been served, assume waiting may pay (the
        # ceiling itself is the most conservative service estimate).
        service = (
            self._ewma_service
            if self._ewma_service is not None
            else self.max_wait_s
        )
        if self._ewma_gap >= service:
            # Arrivals are slower than serving solo: batch-mates will
            # not materialise, so waiting only adds latency.
            return 0.0
        return min(self.max_wait_s, self._wait_gain * self._ewma_gap)

    async def submit(
        self,
        query: np.ndarray,
        k: int,
        deadline: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Park one query until its micro-batch flushes; returns this
        query's ``(ids, distances)`` row.

        ``deadline`` is an absolute event-loop time
        (``loop.time()``-based).  A request whose deadline has already
        passed raises :class:`DeadlineExceededError` immediately; one
        whose deadline expires *while parked* is rejected at flush time
        instead of being dispatched (stale work never reaches the
        index).  A deadline does not abort a dispatch already in
        flight — the answer is nearly done by then, and returning it
        costs nothing extra.
        """
        if self._closed:
            raise RuntimeError("coalescer is closed")
        loop = asyncio.get_running_loop()
        now = loop.time()
        if deadline is not None and now >= deadline:
            raise DeadlineExceededError(
                "deadline expired before the request could be queued"
            )
        self._observe_arrival(now)
        future = loop.create_future()
        pending = _Pending(query, k, future, deadline)
        if (
            self.adaptive_wait
            and not self._pending
            and self.next_wait_s() == 0.0
        ):
            # Sparse-traffic fast path: nobody is parked and the policy
            # says nobody is coming.  Park and yield exactly once —
            # submits already sitting in the event loop's ready queue
            # (a concurrent burst) land in the pending list during the
            # yield and batch as usual; a request still alone
            # afterwards dispatches inline (no timer, no task hop) at
            # near-direct-search latency.  The full batch machinery
            # runs either way, so error/observer semantics are
            # identical to a size-1 flush.
            self._pending.append(pending)
            try:
                await asyncio.sleep(0)
            except asyncio.CancelledError:
                # Cancelled mid-park: the task never reaches the await
                # on its future, so the done-future filter can't drop
                # it — remove the ghost entry explicitly or it would be
                # dispatched as wasted work in the next real batch.
                if pending in self._pending:
                    self._pending.remove(pending)
                raise
            if self._pending == [pending]:
                self._pending = []
                self.scheduled_waits.append(0.0)
                self._inline_inflight += 1
                self._inline_drained.clear()
                try:
                    await self._run_batch(
                        [pending], k, dispatch=self._inline_dispatch
                    )
                finally:
                    self._inline_inflight -= 1
                    if self._inline_inflight == 0:
                        self._inline_drained.set()
            return await future
        self._pending.append(pending)
        if len(self._pending) >= self.max_batch_size:
            self._flush()
        elif self._flush_handle is None:
            wait = self.next_wait_s()
            self.scheduled_waits.append(wait)
            self._flush_handle = loop.call_later(wait, self._flush)
        return await future

    async def close(self) -> None:
        """Flush any parked requests and wait out in-flight batches;
        subsequent submits raise."""
        self._closed = True
        while self._pending:
            self._flush()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight))
        # Singleton fast-path dispatches are awaited by their callers,
        # not tracked as tasks — wait for those to finish draining too.
        await self._inline_drained.wait()

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Dispatch every pending request now.

        ``submit`` flushes synchronously the moment the queue reaches
        ``max_batch_size`` (and flushing itself never awaits), so the
        queue can never exceed one batch — the whole pending list *is*
        the micro-batch.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        # Callers that cancelled while parked drop out of the batch.
        batch = [p for p in batch if not p.future.done()]
        # Requests whose deadline expired while parked are rejected
        # here, before any dispatch work is spent on them.
        now = asyncio.get_running_loop().time()
        expired = [
            p
            for p in batch
            if p.deadline is not None and now >= p.deadline
        ]
        if expired:
            batch = [p for p in batch if p not in expired]
            self.n_deadline_drops += len(expired)
            for pending in expired:
                pending.future.set_exception(
                    DeadlineExceededError(
                        "deadline expired while queued for dispatch"
                    )
                )
        if not batch:
            return
        # One index call per distinct k, arrival order preserved.
        by_k: dict = {}
        for pending in batch:
            by_k.setdefault(pending.k, []).append(pending)
        loop = asyncio.get_running_loop()
        for k, group in by_k.items():
            # max_batch_size is a hard bound on dispatched batches, not
            # just a flush trigger: a request parked outside the normal
            # size check (the adaptive fast path's one-tick yield) must
            # not let a sweep exceed the cap.
            for start in range(0, len(group), self.max_batch_size):
                chunk = group[start : start + self.max_batch_size]
                task = loop.create_task(self._run_batch(chunk, k))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _run_batch(
        self,
        group: List[_Pending],
        k: int,
        dispatch: Optional[DispatchFn] = None,
    ) -> None:
        # Everything — batch assembly, dispatch, and handing out the
        # rows — stays inside the try: an exception that escaped before
        # every future resolves (a ragged batch, a dispatch that
        # returned too few rows) would leave callers awaiting forever.
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            if len(group) == 1:
                # Zero-copy lift for the singleton fast path.
                queries = np.asarray(group[0].query)[None]
            else:
                queries = np.stack([pending.query for pending in group])
            ids, distances = await (dispatch or self._dispatch)(queries, k)
            self._observe_service(loop.time() - started)
            if len(ids) < len(group) or len(distances) < len(group):
                raise ValueError(
                    f"dispatch returned {len(ids)} rows for a batch "
                    f"of {len(group)}"
                )
            # Observed only on success: the stats histogram counts
            # batches that were actually served.
            if self._on_batch is not None:
                self._on_batch(len(group))
            for row, pending in enumerate(group):
                if not pending.future.done():
                    pending.future.set_result((ids[row], distances[row]))
        except Exception as exc:  # propagate to every unresolved caller
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(exc)
