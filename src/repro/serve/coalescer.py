"""Async request coalescing: many concurrent searches, few dispatches.

FeReX earns its throughput by amortising one array evaluation over many
queries (the ~50x batch-over-serial win measured in
``benchmarks/bench_batch_throughput.py``).  A serving process only sees
that win if concurrent single-query callers are *coalesced* into
micro-batches before they reach the index — which is exactly what
:class:`RequestCoalescer` does:

* a submitted request parks in the pending queue;
* the queue flushes when it reaches ``max_batch_size`` **or**
  ``max_wait_ms`` after its first request arrived, whichever is first;
* a flush groups pending requests by ``k`` (the index's batch entry
  point takes one ``k`` per call) and dispatches each group through the
  supplied async ``dispatch`` callable in arrival order;
* each caller's future resolves with its own ``(ids, distances)`` row.

Because the index's batch path is bit-identical to its serial path by
construction, coalescing changes *when* a query is evaluated but never
*what* it returns.

Cancellation discipline: a caller that abandons its request (e.g. via
``asyncio.wait_for``) before the flush is silently dropped from the
batch; one cancelled after dispatch simply never receives the result.
Other requests in the same micro-batch are unaffected either way.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional, Tuple

import numpy as np

#: Async dispatch: (queries (n, dims), k) -> (ids (n, k), distances).
DispatchFn = Callable[
    [np.ndarray, int], Awaitable[Tuple[np.ndarray, np.ndarray]]
]


class _Pending:
    """One parked request: query row, k, and the caller's future."""

    __slots__ = ("query", "k", "future")

    def __init__(self, query: np.ndarray, k: int, future: asyncio.Future):
        self.query = query
        self.k = k
        self.future = future


class RequestCoalescer:
    """Collects concurrent ``submit`` calls into micro-batches.

    Parameters
    ----------
    dispatch:
        Async callable evaluating one micro-batch.  Exceptions it
        raises propagate to every caller in that batch.
    max_batch_size:
        Flush immediately once this many requests are pending.
    max_wait_ms:
        Flush at latest this long after the oldest pending request
        arrived; ``0`` flushes on the next event-loop tick (pure
        opportunistic batching, no added latency).
    on_batch:
        Optional observer called with each successfully served batch
        size (the server wires :meth:`ServerStats.record_batch` here).
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        on_batch: Optional[Callable[[int], None]] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._dispatch = dispatch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self._on_batch = on_batch
        self._pending: List[_Pending] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._inflight: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Requests parked and not yet dispatched."""
        return len(self._pending)

    async def submit(
        self, query: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Park one query until its micro-batch flushes; returns this
        query's ``(ids, distances)`` row."""
        if self._closed:
            raise RuntimeError("coalescer is closed")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append(_Pending(query, k, future))
        if len(self._pending) >= self.max_batch_size:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(
                self.max_wait_s, self._flush
            )
        return await future

    async def close(self) -> None:
        """Flush any parked requests and wait out in-flight batches;
        subsequent submits raise."""
        self._closed = True
        while self._pending:
            self._flush()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight))

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Dispatch every pending request now.

        ``submit`` flushes synchronously the moment the queue reaches
        ``max_batch_size`` (and flushing itself never awaits), so the
        queue can never exceed one batch — the whole pending list *is*
        the micro-batch.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        # Callers that cancelled while parked drop out of the batch.
        batch = [p for p in batch if not p.future.done()]
        if not batch:
            return
        # One index call per distinct k, arrival order preserved.
        by_k: dict = {}
        for pending in batch:
            by_k.setdefault(pending.k, []).append(pending)
        loop = asyncio.get_running_loop()
        for k, group in by_k.items():
            task = loop.create_task(self._run_batch(group, k))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, group: List[_Pending], k: int) -> None:
        # Everything — batch assembly, dispatch, and handing out the
        # rows — stays inside the try: an exception that escaped before
        # every future resolves (a ragged batch, a dispatch that
        # returned too few rows) would leave callers awaiting forever.
        try:
            queries = np.stack([pending.query for pending in group])
            ids, distances = await self._dispatch(queries, k)
            if len(ids) < len(group) or len(distances) < len(group):
                raise ValueError(
                    f"dispatch returned {len(ids)} rows for a batch "
                    f"of {len(group)}"
                )
            # Observed only on success: the stats histogram counts
            # batches that were actually served.
            if self._on_batch is not None:
                self._on_batch(len(group))
            for row, pending in enumerate(group):
                if not pending.future.done():
                    pending.future.set_result((ids[row], distances[row]))
        except Exception as exc:  # propagate to every unresolved caller
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(exc)
