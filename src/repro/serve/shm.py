"""Shared-memory index segments: publish once, attach N times.

A :class:`repro.index.FerexIndex` snapshot is three canonical arrays
(``vectors``/``ids``/``alive``) plus a small configuration record —
exactly what :meth:`FerexIndex.export_state` returns.  This module
moves that state across process boundaries without copying it per
replica:

* :func:`publish_index` copies the arrays once into named
  ``multiprocessing.shared_memory`` blocks and returns a
  :class:`PublishedSegments` handle whose picklable
  :class:`SegmentManifest` names every block, its shape/dtype, the
  publisher's write generation, and a content fingerprint;
* :func:`attach_index` (called in a worker process) maps the named
  blocks, wraps them in read-only numpy views, verifies the fingerprint
  (:meth:`FerexIndex.content_fingerprint` recomputed over the attached
  bytes — a torn or mismatched segment raises
  :class:`SegmentIntegrityError` instead of quietly serving), and
  rebuilds a read-only replica via :meth:`FerexIndex.from_state`.

N attached replicas therefore share one copy of the canonical index
state; each worker re-derives its (deterministic) backend simulation
from it, so answers are bit-identical to the publisher by the same
argument that makes ``save``/``load`` round trips exact.

Lifetime discipline: the publisher owns the blocks — workers ``close``
their mappings, the publisher ``unlink``\\ s after every worker has
moved to a newer generation.  Pool workers are ``multiprocessing``
children, so they share the publisher's ``resource_tracker`` process
and POSIX's register-on-attach is a harmless set re-add there: the
blocks stay tracked until the publisher unlinks them, and an abnormal
publisher exit still reclaims every segment.  (A process attaching
from *outside* that tree carries its own tracker and should expect the
stock CPython attach-registration caveat.)
"""

from __future__ import annotations

import gc
import os
import secrets
from dataclasses import dataclass, field
from math import prod
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..index import FerexIndex, state_digest


class SegmentIntegrityError(RuntimeError):
    """Attached segment bytes do not match the published fingerprint."""


@dataclass(frozen=True)
class ArraySpec:
    """One shared block: its OS-level name and numpy layout."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to attach one published snapshot.

    Plain picklable data — it travels to workers over pipes (and as the
    spawn argument), never the arrays themselves.
    """

    #: The :meth:`FerexIndex.export_state` configuration record.
    meta: dict
    #: Block specs keyed by state-array name (vectors/ids/alive).
    arrays: Dict[str, ArraySpec]
    #: The publisher's ``write_generation`` at publish time.
    generation: int
    #: The publisher's :meth:`FerexIndex.content_fingerprint`.
    fingerprint: str


@dataclass
class PublishedSegments:
    """Publisher-side handle: the manifest plus owned blocks."""

    manifest: SegmentManifest
    _blocks: List[shared_memory.SharedMemory] = field(default_factory=list)

    def close(self) -> None:
        """Unmap this process's views (blocks stay alive for workers)."""
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # a view still alive somewhere local
                pass

    def unlink(self) -> None:
        """Destroy the named blocks.  Attached workers keep their
        mappings until they close them (POSIX semantics); new attaches
        fail, which is exactly what retiring a generation means."""
        self.close()
        for block in self._blocks:
            try:
                block.unlink()
            except FileNotFoundError:
                pass


@dataclass
class AttachedSegments:
    """Worker-side handle over mapped blocks; close when re-attaching."""

    manifest: SegmentManifest
    _blocks: List[shared_memory.SharedMemory] = field(default_factory=list)

    def close(self) -> None:
        """Unmap the attached views.  Callers must drop every numpy
        array referencing the buffers first; a still-exported buffer
        keeps its mapping alive rather than crashing the worker."""
        for block in self._blocks:
            try:
                block.close()
            except BufferError:
                pass


@dataclass(frozen=True)
class SlabManifest:
    """Names + byte capacities of one worker's dispatch slab pair.

    Plain picklable data, like :class:`SegmentManifest` — it travels to
    the worker as a spawn argument and over the pipe on re-slab.
    """

    request_name: str
    response_name: str
    request_bytes: int
    response_bytes: int


@dataclass
class DispatchSlabs:
    """One worker's request/response slab pair (either side's handle).

    The parent owns the blocks (creates and unlinks); the worker only
    attaches and closes.  Unlike index segments the slabs are mutable
    scratch — the pipe's strict request/reply alternation is what keeps
    the two sides from ever writing the same slab concurrently.
    """

    manifest: SlabManifest
    request: shared_memory.SharedMemory
    response: shared_memory.SharedMemory

    def close(self) -> None:
        """Unmap this process's views.  Callers drop their numpy views
        first; a still-exported buffer keeps its mapping alive rather
        than crashing the process."""
        for block in (self.request, self.response):
            try:
                block.close()
            except BufferError:
                pass

    def unlink(self) -> None:
        """Destroy the named blocks (parent side, on retire/grow)."""
        self.close()
        for block in (self.request, self.response):
            try:
                block.unlink()
            except FileNotFoundError:
                pass


def create_slabs(
    request_bytes: int,
    response_bytes: int,
    name_prefix: str = "ferex",
) -> DispatchSlabs:
    """Allocate one collision-proof request/response slab pair.

    Capacities are floored at one byte (``SharedMemory`` rejects zero)
    and reported as the OS actually granted them (page-rounded), so the
    overflow check upstream keys off real capacity."""
    token = f"{name_prefix}-slab-{os.getpid()}-{secrets.token_hex(4)}"
    request = shared_memory.SharedMemory(
        name=f"{token}-req", create=True, size=max(1, int(request_bytes))
    )
    try:
        response = shared_memory.SharedMemory(
            name=f"{token}-resp",
            create=True,
            size=max(1, int(response_bytes)),
        )
    except Exception:
        request.close()
        request.unlink()
        raise
    manifest = SlabManifest(
        request_name=request.name,
        response_name=response.name,
        request_bytes=request.size,
        response_bytes=response.size,
    )
    return DispatchSlabs(
        manifest=manifest, request=request, response=response
    )


def attach_slabs(manifest: SlabManifest) -> DispatchSlabs:
    """Map a slab pair published by the parent (worker side)."""
    request = shared_memory.SharedMemory(name=manifest.request_name)
    try:
        response = shared_memory.SharedMemory(name=manifest.response_name)
    except Exception:
        request.close()
        raise
    return DispatchSlabs(
        manifest=manifest, request=request, response=response
    )


def publish_index(
    index: FerexIndex, name_prefix: str = "ferex"
) -> PublishedSegments:
    """Copy ``index``'s exported state into fresh shared-memory blocks.

    The one copy made here is the copy *every* attaching replica
    shares.  Block names are collision-proofed with the pid and a
    random token, so several pools (or generations) can coexist.
    """
    meta, arrays = index.export_state()
    generation = index.write_generation
    token = f"{name_prefix}-{os.getpid()}-{secrets.token_hex(4)}"
    specs: Dict[str, ArraySpec] = {}
    blocks: List[shared_memory.SharedMemory] = []
    views: Dict[str, np.ndarray] = {}
    try:
        for key, array in arrays.items():
            name = f"{token}-{key}"
            block = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, array.nbytes)
            )
            blocks.append(block)
            view = np.frombuffer(
                block.buf, dtype=array.dtype, count=array.size
            ).reshape(array.shape)
            if array.size:
                view[...] = array
            views[key] = view
            del view
            specs[key] = ArraySpec(
                name=name, shape=tuple(array.shape), dtype=str(array.dtype)
            )
        # Fingerprint the bytes actually placed in the segments — the
        # exact data workers will re-hash at attach — not the live
        # index, which a (mis-sequenced) concurrent mutation could have
        # moved on from between the copy and the stamp.
        fingerprint = state_digest(
            meta, views["vectors"], views["ids"], views["alive"]
        )
    except Exception:
        views.clear()
        gc.collect()
        for block in blocks:
            block.close()
            block.unlink()
        raise
    views.clear()
    gc.collect()
    manifest = SegmentManifest(
        meta=meta,
        arrays=specs,
        generation=generation,
        fingerprint=fingerprint,
    )
    return PublishedSegments(manifest=manifest, _blocks=blocks)


def attach_index(
    manifest: SegmentManifest,
) -> Tuple[FerexIndex, AttachedSegments]:
    """Map a published snapshot and rebuild a read-only replica.

    The replica's canonical arrays are zero-copy views over the shared
    blocks (read-only, enforced both by the numpy flag and the index's
    attached-replica guard).  Raises :class:`SegmentIntegrityError`
    when the attached bytes do not reproduce the published fingerprint.
    """
    attached = AttachedSegments(manifest=manifest)
    arrays: Dict[str, np.ndarray] = {}
    index: Optional[FerexIndex] = None
    try:
        for key, spec in manifest.arrays.items():
            block = shared_memory.SharedMemory(name=spec.name)
            attached._blocks.append(block)
            view = np.frombuffer(
                block.buf, dtype=np.dtype(spec.dtype), count=prod(spec.shape)
            ).reshape(spec.shape)
            view.flags.writeable = False
            arrays[key] = view
            del view
        # Verify the raw bytes *before* the backend rebuild: a torn or
        # corrupted segment must fail fast with the typed integrity
        # error, not feed garbage through minutes of deterministic
        # re-programming first (or crash inside it with an arbitrary
        # error).
        actual = state_digest(
            manifest.meta,
            arrays["vectors"],
            arrays["ids"],
            arrays["alive"],
        )
        if actual != manifest.fingerprint:
            raise SegmentIntegrityError(
                f"attached segments hash to {actual}, publisher "
                f"announced {manifest.fingerprint}; refusing to serve "
                "from a divergent snapshot"
            )
        index = FerexIndex.from_state(
            manifest.meta,
            arrays["vectors"],
            arrays["ids"],
            arrays["alive"],
            read_only=True,
        )
    except Exception:
        # Release every view over the blocks before unmapping, or the
        # mappings (buffers still exported) would outlive the error.
        index = None
        arrays.clear()
        gc.collect()
        attached.close()
        raise
    return index, attached
