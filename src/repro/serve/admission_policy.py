"""Pluggable admission/eviction policies for the serving query cache.

:class:`repro.serve.cache.QueryCache` historically admitted every
miss: one-hit-wonder queries under a skewed (Zipfian) request stream
evict the hot head, and every avoided re-search is a full CAM-array
scan the paper prices in energy and latency — so the admission policy
is a first-order serving lever.  This module separates *what the cache
stores* (the policy's job: recency/frequency bookkeeping, eviction,
admission) from *what the cache means* (``QueryCache``'s job: key
canonicalisation, hit/miss accounting, frozen entries, invalidation on
index writes).

Two policies ship:

* :class:`LruPolicy` — the classic bounded LRU, bit-identical in
  behaviour to the pre-policy cache;
* :class:`TinyLfuPolicy` — W-TinyLFU (Einziger, Gabbay & Manes): a
  small recency *window* LRU in front of a frequency-protected *main*
  segment, fronted by a :class:`FrequencySketch` (doorkeeper Bloom
  filter + 4-bit Count-Min sketch with periodic halving decay).  A
  candidate evicted from the window is admitted to the main segment
  only when its estimated frequency beats the would-be victim's, so a
  burst of one-hit wonders can never displace the hot head.

Frequency is keyed on the *generation-free* part of the cache key
(query bytes + ``k``, supplied by ``QueryCache`` via the
``frequency_key`` hook): cached rows die with every index
write-generation bump — they might be stale — but a query's popularity
does not, so the sketch survives invalidations and the hot head
re-admits itself immediately after a write.

Hashing uses ``blake2b`` with fixed salts, so sketch state (and with
it every admission decision) is deterministic across processes and
runs — the property the serving benches and parity tests rely on.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

#: Hook deriving the frequency-sketch key from a cache key.  The
#: default hashes the whole key; ``QueryCache`` passes a hook that
#: drops the write-generation component.
FrequencyKey = Callable[[object], bytes]


def _default_frequency_key(key: object) -> bytes:
    """Hash the whole key (``repr`` is deterministic for the tuples of
    bytes/ints cache keys are made of)."""
    if isinstance(key, bytes):
        return key
    return repr(key).encode()


def _next_pow2(n: int) -> int:
    return 1 << max(int(n) - 1, 1).bit_length()


class FrequencySketch:
    """Approximate access-frequency counter: doorkeeper + 4-bit CMS.

    The *doorkeeper* Bloom filter absorbs the first occurrence of
    every key, so the Count-Min table only counts keys seen at least
    twice — one-hit wonders (the vast majority under a long-tailed
    stream) never pollute the counters.  The CMS itself keeps
    ``depth`` rows of 4-bit saturating counters (conservative update:
    only the minimal counters advance).  Every ``sample_size``
    recorded accesses, all counters are halved and the doorkeeper is
    reset — the decay that ages out yesterday's hot set.

    Estimates therefore live in ``[0, counter_max + 1]``: the CMS
    minimum plus one when the doorkeeper remembers the key.

    Parameters
    ----------
    capacity:
        The cache capacity the sketch guards; table sizes and the
        decay period scale from it.
    depth:
        CMS rows (independent hash functions).
    counter_max:
        Saturation value of one counter (15 = 4-bit).
    sample_multiplier:
        Decay period in accesses, as a multiple of ``capacity``.
    """

    _DOORKEEPER_PROBES = 3

    def __init__(
        self,
        capacity: int,
        depth: int = 4,
        counter_max: int = 15,
        sample_multiplier: int = 10,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = int(depth)
        self.counter_max = int(counter_max)
        self.width = _next_pow2(max(64, 8 * capacity))
        self.sample_size = max(2, sample_multiplier * capacity)
        self._table = np.zeros((self.depth, self.width), dtype=np.uint8)
        self._door_bits = _next_pow2(max(64, 16 * capacity))
        self._door = np.zeros(self._door_bits, dtype=bool)
        self.increments = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def _hashes(self, data: bytes) -> Tuple[int, int]:
        """Two independent 64-bit hashes (Kirsch–Mitzenmacher base);
        keyed blake2b keeps them deterministic across processes."""
        digest = hashlib.blake2b(
            data, digest_size=16, key=b"ferex-sketch"
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return h1, h2

    def _door_slots(self, h1: int, h2: int) -> list:
        mask = self._door_bits - 1
        return [
            (h1 + i * h2) & mask
            for i in range(1, self._DOORKEEPER_PROBES + 1)
        ]

    def _cms_columns(self, h1: int, h2: int) -> np.ndarray:
        mask = self.width - 1
        return np.fromiter(
            ((h1 + (i + 7) * h2) & mask for i in range(self.depth)),
            dtype=np.int64,
            count=self.depth,
        )

    # ------------------------------------------------------------------
    def record(self, data: bytes) -> None:
        """Count one access to ``data``."""
        h1, h2 = self._hashes(data)
        slots = self._door_slots(h1, h2)
        if not all(self._door[slot] for slot in slots):
            # First sighting since the last decay: the doorkeeper
            # remembers it, the CMS stays clean.
            self._door[slots] = True
        else:
            rows = np.arange(self.depth)
            columns = self._cms_columns(h1, h2)
            counters = self._table[rows, columns]
            low = counters.min()
            if low < self.counter_max:
                # Conservative update: only the minimal counters move,
                # halving the classic CMS overestimation bias.
                bump = rows[counters == low]
                self._table[bump, columns[counters == low]] += 1
        self.increments += 1
        if self.increments >= self.sample_size:
            self._decay()

    def estimate(self, data: bytes) -> int:
        """Approximate access count of ``data`` since ~one decay
        period (never underestimates within the period)."""
        h1, h2 = self._hashes(data)
        rows = np.arange(self.depth)
        freq = int(self._table[rows, self._cms_columns(h1, h2)].min())
        if all(self._door[slot] for slot in self._door_slots(h1, h2)):
            freq += 1
        return freq

    def _decay(self) -> None:
        """Halve every counter and forget the doorkeeper — the aging
        step that keeps the sketch tracking the *current* hot set."""
        self._table >>= 1
        self._door[:] = False
        self.increments >>= 1
        self.resets += 1

    def snapshot(self) -> dict:
        return {
            "width": int(self.width),
            "depth": int(self.depth),
            "counter_max": int(self.counter_max),
            "sample_size": int(self.sample_size),
            "increments": int(self.increments),
            "resets": int(self.resets),
            "doorkeeper_fill": float(self._door.mean()),
        }


class LruPolicy:
    """Plain bounded LRU — admit every insert, evict the LRU tail.

    Bit-identical in behaviour to the pre-policy ``QueryCache``; the
    serving benches use it as the admission-free baseline.
    """

    name = "lru"

    def __init__(
        self,
        capacity: int,
        frequency_key: Optional[FrequencyKey] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def lookup(self, key, record: bool = True):
        """Return the stored entry (refreshing recency) or ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def insert(self, key, entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (no frequency state to preserve)."""
        self._entries.clear()

    def snapshot(self) -> dict:
        return {
            "policy": self.name,
            "size": len(self._entries),
            "capacity": int(self.capacity),
            "evictions": int(self.evictions),
        }


class TinyLfuPolicy:
    """W-TinyLFU: window LRU + frequency-gated segmented main (SLRU).

    New entries land in a small recency *window* (a plain LRU sized at
    ``window_fraction`` of capacity, minimum one slot).  The window's
    LRU victim becomes a *candidate* for the main segment: while the
    main segment has room it is admitted outright; once full, the
    candidate is admitted only if the :class:`FrequencySketch`
    estimates it more popular than the main segment's own victim —
    otherwise the candidate is dropped and the resident survives
    (``admission_rejections`` counts these).  Ties reject: an attacker
    replaying a key pair cannot flush the protected set.

    The main segment is itself segmented (SLRU): admitted candidates
    enter *probation*; a hit in probation promotes to the *protected*
    segment (~80% of main), demoting protected's own LRU back to
    probation when full.  Eviction victims always come from probation
    first, so an entry that proved itself twice cannot be churned out
    by a parade of once-admitted candidates.

    ``invalidate()`` drops the stored entries but keeps the sketch and
    doorkeeper: frequency is keyed generation-free, so popularity
    survives index writes while potentially-stale rows do not.
    """

    name = "tinylfu"

    #: Fraction of the main segment reserved for twice-hit entries.
    _PROTECTED_FRACTION = 0.8

    def __init__(
        self,
        capacity: int,
        frequency_key: Optional[FrequencyKey] = None,
        window_fraction: float = 0.01,
        sketch: Optional[FrequencySketch] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if not 0.0 < window_fraction < 1.0:
            raise ValueError("window_fraction must be in (0, 1)")
        self.capacity = int(capacity)
        self.window_capacity = (
            max(1, round(capacity * window_fraction)) if capacity else 0
        )
        self.main_capacity = self.capacity - self.window_capacity
        self.protected_capacity = int(
            self.main_capacity * self._PROTECTED_FRACTION
        )
        self._frequency_key = frequency_key or _default_frequency_key
        self.sketch = sketch or FrequencySketch(max(1, capacity))
        self._window: OrderedDict = OrderedDict()
        self._probation: OrderedDict = OrderedDict()
        self._protected: OrderedDict = OrderedDict()
        self.evictions = 0
        self.admission_rejections = 0

    def __len__(self) -> int:
        return (
            len(self._window)
            + len(self._probation)
            + len(self._protected)
        )

    def __contains__(self, key) -> bool:
        return (
            key in self._window
            or key in self._probation
            or key in self._protected
        )

    # ------------------------------------------------------------------
    def record_access(self, key) -> None:
        """Count one logical access (hit *or* miss) toward the key's
        frequency — misses matter: they are exactly how a soon-to-be
        candidate earns admission."""
        self.sketch.record(self._frequency_key(key))

    def lookup(self, key, record: bool = True):
        """Return the stored entry (refreshing recency in its segment,
        promoting probation hits to protected) or ``None``;
        ``record=True`` also counts the access in the sketch
        (dispatch-time re-probes pass ``False`` — their submit-path
        lookup already counted)."""
        if record:
            self.record_access(key)
        entry = self._window.get(key)
        if entry is not None:
            self._window.move_to_end(key)
            return entry
        entry = self._protected.get(key)
        if entry is not None:
            self._protected.move_to_end(key)
            return entry
        entry = self._probation.get(key)
        if entry is not None:
            self._promote(key, entry)
        return entry

    def _promote(self, key, entry) -> None:
        """A probation hit proved the entry twice: move it into
        protected, demoting protected's LRU back to probation to keep
        the segment bounded."""
        del self._probation[key]
        if self.protected_capacity == 0:
            # Degenerate tiny mains: probation is all there is.
            self._probation[key] = entry
            self._probation.move_to_end(key)
            return
        self._protected[key] = entry
        while len(self._protected) > self.protected_capacity:
            demoted_key, demoted = self._protected.popitem(last=False)
            self._probation[demoted_key] = demoted

    def insert(self, key, entry) -> None:
        """File a new entry through the window, spilling the window's
        LRU victim into the frequency-gated main segment."""
        if key in self._window:
            self._window[key] = entry
            self._window.move_to_end(key)
            return
        if key in self._protected:
            self._protected[key] = entry
            self._protected.move_to_end(key)
            return
        if key in self._probation:
            self._probation[key] = entry
            self._probation.move_to_end(key)
            return
        self._window[key] = entry
        while len(self._window) > self.window_capacity:
            candidate_key, candidate = self._window.popitem(last=False)
            self._admit(candidate_key, candidate)

    def _main_victim(self):
        """The key next in line for eviction from main: probation's
        LRU when probation is populated, protected's otherwise."""
        if self._probation:
            return next(iter(self._probation)), self._probation
        return next(iter(self._protected)), self._protected

    def _admit(self, candidate_key, candidate) -> None:
        if self.main_capacity == 0:
            self.evictions += 1
            return
        if len(self._probation) + len(self._protected) < self.main_capacity:
            self._probation[candidate_key] = candidate
            return
        victim_key, victim_segment = self._main_victim()
        candidate_freq = self.sketch.estimate(
            self._frequency_key(candidate_key)
        )
        victim_freq = self.sketch.estimate(
            self._frequency_key(victim_key)
        )
        if candidate_freq > victim_freq:
            del victim_segment[victim_key]
            self._probation[candidate_key] = candidate
        else:
            self.admission_rejections += 1
        self.evictions += 1

    def invalidate(self) -> None:
        """Drop every stored entry; the frequency sketch survives (it
        is keyed generation-free, so popularity outlives index
        writes)."""
        self._window.clear()
        self._probation.clear()
        self._protected.clear()

    def snapshot(self) -> dict:
        return {
            "policy": self.name,
            "size": len(self),
            "capacity": int(self.capacity),
            "window_size": len(self._window),
            "window_capacity": int(self.window_capacity),
            "main_size": len(self._probation) + len(self._protected),
            "main_capacity": int(self.main_capacity),
            "probation_size": len(self._probation),
            "protected_size": len(self._protected),
            "protected_capacity": int(self.protected_capacity),
            "evictions": int(self.evictions),
            "admission_rejections": int(self.admission_rejections),
            "sketch": self.sketch.snapshot(),
        }


#: Registry for the string-valued policy knobs on ``QueryCache`` /
#: ``FerexServer``.
POLICIES = {
    LruPolicy.name: LruPolicy,
    TinyLfuPolicy.name: TinyLfuPolicy,
}


def make_policy(
    name: str,
    capacity: int,
    frequency_key: Optional[FrequencyKey] = None,
):
    """Instantiate a registered policy by name (``"lru"`` /
    ``"tinylfu"``)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; known: "
            f"{sorted(POLICIES)}"
        ) from None
    return cls(capacity, frequency_key=frequency_key)
