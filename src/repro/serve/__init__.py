"""The serving layer: async batching, caching and replication on top of
:class:`repro.index.FerexIndex`.

* :class:`FerexServer` — the facade: coalesced + cached + replicated
  search that stays bit-identical to direct index search;
* :class:`RequestCoalescer` — micro-batches concurrent requests so they
  ride the index's batched search path;
* :class:`QueryCache` — policy-driven cache keyed on (query bytes, k,
  write-generation), invalidated by every index mutation; admission/
  eviction is pluggable (:mod:`repro.serve.admission_policy`):
  :class:`LruPolicy` or :class:`TinyLfuPolicy` (W-TinyLFU — a
  :class:`FrequencySketch` gates admission under skewed traffic);
* :class:`ReplicaRouter` / :class:`Replica` — round-robin or
  least-loaded reads over N bit-identical replicas, single-writer
  mutation path with parity checking;
* :class:`ProcReplicaPool` — N worker *processes* attached zero-copy to
  the primary index's shared-memory segments (:mod:`repro.serve.shm`),
  for read parallelism beyond the GIL; writes drain through the
  single-writer path and republish a fresh generation;
* :class:`ServerStats` — qps, batch-size histogram, cache hit rate and
  latency percentiles for benchmarks and tests;
* :mod:`repro.serve.net` — the HTTP wire on top: front-end, admission
  control and the pool autoscaler (:class:`~repro.serve.net.
  NetFrontend`, :class:`~repro.serve.net.AdmissionController`,
  :class:`~repro.serve.net.Autoscaler`).
"""

from .admission_policy import (
    FrequencySketch,
    LruPolicy,
    TinyLfuPolicy,
    make_policy,
)
from .cache import QueryCache, canonical_int_query
from .coalescer import DeadlineExceededError, RequestCoalescer
from .procpool import PoolBrokenError, ProcReplicaPool
from .router import Replica, ReplicaParityError, ReplicaRouter
from .server import FerexServer
from .shm import (
    SegmentIntegrityError,
    SegmentManifest,
    attach_index,
    publish_index,
)
from .stats import ServerStats

__all__ = [
    "DeadlineExceededError",
    "FerexServer",
    "FrequencySketch",
    "LruPolicy",
    "PoolBrokenError",
    "ProcReplicaPool",
    "QueryCache",
    "Replica",
    "ReplicaParityError",
    "ReplicaRouter",
    "RequestCoalescer",
    "SegmentIntegrityError",
    "SegmentManifest",
    "ServerStats",
    "TinyLfuPolicy",
    "attach_index",
    "canonical_int_query",
    "make_policy",
    "publish_index",
]
