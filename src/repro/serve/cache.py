"""Policy-driven query cache for the serving layer.

Entries are keyed on ``(query bytes, k, index write-generation)``: the
generation component makes every index mutation an implicit, total
invalidation — a key minted before an ``add``/``remove``/``compact``
can never collide with one minted after, so stale results are
unreachable the instant the index changes.  :class:`repro.serve.server.
FerexServer` additionally calls :meth:`QueryCache.clear` on its write
path so the dead generation's entries release their memory immediately
instead of aging out.

What the cache *keeps* is delegated to a pluggable eviction/admission
policy (:mod:`repro.serve.admission_policy`): ``"lru"`` (default, the
classic recency cache) or ``"tinylfu"`` (W-TinyLFU — a frequency
sketch gates admission so one-hit wonders under skewed traffic cannot
evict the hot head).  The TinyLFU frequency sketch is keyed on the
*generation-free* part of the key (query bytes + ``k``), so popularity
survives write-generation invalidations while the cached rows
themselves do not.

The cache is **event-loop confined**: every access happens on the
server's asyncio thread (lookups on the submit path, inserts after the
dispatch coroutine resumes), so no locking is needed.  Stored arrays
are frozen copies of the served rows (the server hands callers
*writable* copies on a hit, so hit and miss results have identical
mutability); hits are bit-identical to the miss that populated them.

Hit/miss accounting is kept in two eras: *lifetime* counters
(``hits``/``misses``, never reset) and *windowed* counters
(``window_hits``/``window_misses``, reset by every :meth:`clear`), so
the exported hit rate can be read per traffic era instead of blending
across invalidations.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .admission_policy import LruPolicy, TinyLfuPolicy, make_policy

#: Cache key: (canonical query bytes, k, index write-generation).
CacheKey = Tuple[bytes, int, int]


def canonical_int_query(query: np.ndarray) -> np.ndarray:
    """Canonicalise a query to contiguous ``int64`` — *rejecting*
    non-integral values instead of truncating them.

    A silent ``astype(int64)`` would alias two distinct float queries
    (``1.2`` and ``1.7`` both truncate to ``1``) onto one cache key,
    serving the second caller the first one's rows.  Fractional or
    non-finite input raises ``ValueError``; integral-valued float
    arrays (``1.0``) canonicalise to the same key as their int
    counterparts.
    """
    arr = np.ascontiguousarray(query)
    if np.issubdtype(arr.dtype, np.integer) or arr.dtype == bool:
        return np.ascontiguousarray(arr, dtype=np.int64)
    if not np.issubdtype(arr.dtype, np.floating):
        raise ValueError(
            f"queries must be integer-valued, got dtype {arr.dtype}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("queries must be finite, got non-finite values")
    canonical = arr.astype(np.int64)
    if not np.array_equal(canonical, arr):
        raise ValueError(
            "queries must be integer-valued; refusing to truncate "
            "fractional values (distinct float queries would alias to "
            "one cache key)"
        )
    return np.ascontiguousarray(canonical)


class QueryCache:
    """Bounded cache of ``(ids, distances)`` rows per served query.

    Parameters
    ----------
    capacity:
        Maximum resident entries; ``0`` disables caching entirely —
        the cache is inert (lookups return ``None`` without touching
        any counter, inserts are dropped).
    policy:
        Eviction/admission policy: ``"lru"`` (default) or
        ``"tinylfu"``, or an already-constructed policy object from
        :mod:`repro.serve.admission_policy`.
    """

    def __init__(
        self,
        capacity: int = 1024,
        policy: Union[str, LruPolicy, TinyLfuPolicy] = "lru",
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        if isinstance(policy, str):
            policy = make_policy(
                policy, capacity, frequency_key=self._frequency_key
            )
        self._policy = policy
        # Lifetime counters: never reset.
        self.hits = 0
        self.misses = 0
        # Windowed counters: reset by every clear(), so hit_rate can
        # be read per write-generation era.
        self.window_hits = 0
        self.window_misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _frequency_key(key: CacheKey) -> bytes:
        """Generation-free sketch key: query bytes + ``k``.  Cached
        rows die with the write generation; popularity does not."""
        return key[0] + int(key[1]).to_bytes(8, "little", signed=True)

    @staticmethod
    def key(query: np.ndarray, k: int, generation: int) -> CacheKey:
        """Canonical key for one query row.

        Queries are quantised integer vectors; hashing the ``int64``
        byte image makes the key independent of the caller's input
        dtype (a list, ``int32`` array, … all map to the same entry).
        Non-integral queries raise ``ValueError`` instead of silently
        truncating into another query's key
        (:func:`canonical_int_query`).
        """
        canonical = canonical_int_query(query)
        return (canonical.tobytes(), int(k), int(generation))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._policy)

    @property
    def policy(self):
        """The live eviction/admission policy object."""
        return self._policy

    @property
    def policy_name(self) -> str:
        return self._policy.name

    @property
    def evictions(self) -> int:
        """Entries dropped for capacity (admission rejections
        included)."""
        return self._policy.evictions

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since construction (0.0 before traffic)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def window_hit_rate(self) -> float:
        """Hits over lookups since the last invalidation — the
        per-traffic-era rate ``/metrics`` readers usually want."""
        total = self.window_hits + self.window_misses
        return self.window_hits / total if total else 0.0

    def get(
        self, key: CacheKey
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Look up one entry, refreshing its recency (and, under
        TinyLFU, its frequency) on every call.  A disabled
        (``capacity=0``) cache is inert: ``None``, no counters
        touched."""
        if self.capacity == 0:
            return None
        entry = self._policy.lookup(key)
        if entry is None:
            self.misses += 1
            self.window_misses += 1
            return None
        self.hits += 1
        self.window_hits += 1
        return entry

    def peek(
        self, key: CacheKey
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Like :meth:`get` but without touching the hit/miss counters
        (or the frequency sketch — the submit-path lookup already
        counted this access).

        The server's *dispatch-time* probe uses this: a micro-batch row
        may have been populated by a batch that completed after this
        row's submit-time lookup missed, and serving it from the cache
        skips the executor (or worker-process) hop entirely.  Those
        late hits are accounted separately
        (:attr:`repro.serve.ServerStats.n_dispatch_cache_hits`), so the
        cache's own counters keep meaning "submit-path lookups".
        Recency still refreshes — a served entry is a used entry.
        """
        if self.capacity == 0:
            return None
        return self._policy.lookup(key, record=False)

    def put(
        self, key: CacheKey, ids: np.ndarray, distances: np.ndarray
    ) -> None:
        """Insert one served result; the policy decides what (if
        anything) to evict — or, under TinyLFU, whether the entry even
        survives past the admission window."""
        if self.capacity == 0:
            return
        ids = np.array(ids)
        distances = np.array(distances)
        ids.flags.writeable = False
        distances.flags.writeable = False
        self._policy.insert(key, (ids, distances))

    def clear(self) -> None:
        """Drop every entry (the server's write-path invalidation) and
        start a fresh accounting window.  Lifetime counters — and the
        TinyLFU frequency sketch, which is keyed generation-free —
        survive."""
        if len(self._policy):
            self.invalidations += 1
        self._policy.invalidate()
        self.window_hits = 0
        self.window_misses = 0

    def snapshot(self) -> dict:
        """Counters for the stats surface: lifetime and windowed
        (since-last-invalidation) accounting plus the policy's own
        state (window/main occupancy, admission rejections, sketch
        resets under TinyLFU)."""
        return {
            "size": len(self._policy),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "window_hits": self.window_hits,
            "window_misses": self.window_misses,
            "window_hit_rate": self.window_hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "policy": self._policy.snapshot(),
        }
