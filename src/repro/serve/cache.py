"""LRU query cache for the serving layer.

Entries are keyed on ``(query bytes, k, index write-generation)``: the
generation component makes every index mutation an implicit, total
invalidation — a key minted before an ``add``/``remove``/``compact``
can never collide with one minted after, so stale results are
unreachable the instant the index changes.  :class:`repro.serve.server.
FerexServer` additionally calls :meth:`QueryCache.clear` on its write
path so the dead generation's entries release their memory immediately
instead of aging out of the LRU.

The cache is **event-loop confined**: every access happens on the
server's asyncio thread (lookups on the submit path, inserts after the
dispatch coroutine resumes), so no locking is needed.  Stored arrays
are frozen copies of the served rows (the server hands callers
*writable* copies on a hit, so hit and miss results have identical
mutability); hits are bit-identical to the miss that populated them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

#: Cache key: (canonical query bytes, k, index write-generation).
CacheKey = Tuple[bytes, int, int]


class QueryCache:
    """Bounded LRU of ``(ids, distances)`` rows per served query.

    Parameters
    ----------
    capacity:
        Maximum resident entries; ``0`` disables caching entirely
        (every lookup misses, inserts are dropped).
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        # key -> (ids, distances), most-recently-used last
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(query: np.ndarray, k: int, generation: int) -> CacheKey:
        """Canonical key for one query row.

        Queries are quantised integer vectors; hashing the ``int64``
        byte image makes the key independent of the caller's input
        dtype (a list, ``int32`` array, … all map to the same entry).
        """
        canonical = np.ascontiguousarray(query, dtype=np.int64)
        return (canonical.tobytes(), int(k), int(generation))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since construction (0.0 before traffic)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(
        self, key: CacheKey
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Look up one entry, refreshing its LRU recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(
        self, key: CacheKey
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Like :meth:`get` but without touching the hit/miss counters.

        The server's *dispatch-time* probe uses this: a micro-batch row
        may have been populated by a batch that completed after this
        row's submit-time lookup missed, and serving it from the LRU
        skips the executor (or worker-process) hop entirely.  Those
        late hits are accounted separately
        (:attr:`repro.serve.ServerStats.n_dispatch_cache_hits`), so the
        cache's own counters keep meaning "submit-path lookups".
        LRU recency still refreshes — a served entry is a used entry.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(
        self, key: CacheKey, ids: np.ndarray, distances: np.ndarray
    ) -> None:
        """Insert one served result, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        ids = np.array(ids)
        distances = np.array(distances)
        ids.flags.writeable = False
        distances.flags.writeable = False
        self._entries[key] = (ids, distances)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the server's write-path invalidation)."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()

    def snapshot(self) -> dict:
        """Counters for the stats surface."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
